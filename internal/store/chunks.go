package store

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Chunked snapshots store the bulky, append-mostly sections of a dataset
// (plaintext rows, ciphertext rows, provenance) as content-addressed data
// chunks: each fixed row-range is serialized, compressed, CRC-framed, and
// written to a file named by the hex SHA-256 of its *uncompressed*
// payload. Because flushes grow these sections by appending (incremental
// flushes never reorder settled rows), every full chunk keeps its content
// — and therefore its name — across rotations, so a rotation re-links
// existing chunks instead of rewriting the dataset. Naming by the
// uncompressed payload keeps dedup stable even if the codec or
// compression level changes between versions.
//
// Chunk frame layout:
//
//	4 bytes magic "F2CK" | 1 byte frame version | 1 byte codec |
//	4 bytes big-endian uncompressed payload length |
//	4 bytes CRC32 (IEEE) of the uncompressed payload | body
//
// codec 0 stores the payload raw; codec 1 stores it DEFLATE-compressed.
// The CRC and length are always of the uncompressed payload, so a
// truncated or bit-flipped body fails the frame check regardless of
// codec.

const (
	chunkMagic        = "F2CK"
	chunkFrameVersion = 1

	chunkCodecRaw   = 0
	chunkCodecFlate = 1

	// chunkHeaderSize is the fixed frame prefix before the body.
	chunkHeaderSize = 4 + 1 + 1 + 4 + 4

	// maxChunkBytes caps the uncompressed payload so a hostile length
	// field cannot drive a multi-gigabyte allocation during decode.
	maxChunkBytes = 1 << 30

	// chunkNameLen is the length of a chunk name: hex SHA-256.
	chunkNameLen = 2 * sha256.Size

	chunksDirName = "chunks"
)

// chunkName derives a payload's content address.
func chunkName(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// validChunkName reports whether name is a plausible content address:
// exactly 64 lowercase hex characters. Everything else — including path
// separators, dots, and uppercase hex — is rejected, so a hostile index
// blob cannot steer chunk reads outside the chunk directory.
func validChunkName(name string) bool {
	if len(name) != chunkNameLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// encodeChunkFrame frames a payload for storage: DEFLATE-compressed when
// that helps, raw when it does not (already-dense payloads).
func encodeChunkFrame(payload []byte) ([]byte, error) {
	if len(payload) > maxChunkBytes {
		return nil, fmt.Errorf("store: chunk payload is %d bytes, max %d", len(payload), maxChunkBytes)
	}
	codec := byte(chunkCodecFlate)
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("store: chunk compressor: %w", err)
	}
	if _, err := zw.Write(payload); err != nil {
		return nil, fmt.Errorf("store: compressing chunk: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("store: compressing chunk: %w", err)
	}
	body := buf.Bytes()
	if len(body) >= len(payload) {
		codec = chunkCodecRaw
		body = payload
	}
	frame := make([]byte, chunkHeaderSize+len(body))
	copy(frame[0:4], chunkMagic)
	frame[4] = chunkFrameVersion
	frame[5] = codec
	binary.BigEndian.PutUint32(frame[6:10], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[10:14], crc32.ChecksumIEEE(payload))
	copy(frame[chunkHeaderSize:], body)
	return frame, nil
}

// decodeChunkFrame inverts encodeChunkFrame. Every field is validated
// before it is trusted: magic, frame version, codec, the length cap, and
// finally the CRC of the decompressed payload. Hostile input errors; it
// never panics and never allocates more than maxChunkBytes.
func decodeChunkFrame(frame []byte) ([]byte, error) {
	if len(frame) < chunkHeaderSize {
		return nil, fmt.Errorf("store: chunk frame truncated at %d bytes", len(frame))
	}
	if string(frame[0:4]) != chunkMagic {
		return nil, errors.New("store: bad chunk magic")
	}
	if frame[4] != chunkFrameVersion {
		return nil, fmt.Errorf("store: chunk frame version %d, want %d", frame[4], chunkFrameVersion)
	}
	codec := frame[5]
	size := binary.BigEndian.Uint32(frame[6:10])
	if size > maxChunkBytes {
		return nil, fmt.Errorf("store: chunk claims %d bytes, max %d", size, maxChunkBytes)
	}
	body := frame[chunkHeaderSize:]
	var payload []byte
	switch codec {
	case chunkCodecRaw:
		if len(body) != int(size) {
			return nil, fmt.Errorf("store: raw chunk body is %d bytes, header says %d", len(body), size)
		}
		payload = body
	case chunkCodecFlate:
		// LimitReader bounds the inflation at the declared size plus one
		// byte: a body that inflates past its header is corrupt, and the
		// extra byte lets the size check below distinguish "too long"
		// from "exactly right".
		zr := flate.NewReader(bytes.NewReader(body))
		buf := make([]byte, 0, size)
		w := bytes.NewBuffer(buf)
		n, err := io.Copy(w, io.LimitReader(zr, int64(size)+1))
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("store: inflating chunk: %w", err)
		}
		if n != int64(size) {
			return nil, fmt.Errorf("store: chunk inflates to %d bytes, header says %d", n, size)
		}
		payload = w.Bytes()
	default:
		return nil, fmt.Errorf("store: unknown chunk codec %d", codec)
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(frame[10:14]) {
		return nil, errors.New("store: chunk payload checksum mismatch")
	}
	return payload, nil
}

// ByteSource is the read side of chunk storage: fetch one framed chunk by
// content address. It is the part a remote backend (S3 GET, HTTP range
// server) must implement for lazy hydration to work against it.
type ByteSource interface {
	// ReadChunk returns the framed bytes of the named chunk.
	ReadChunk(name string) ([]byte, error)
}

// ChunkStore is a full chunk backend: reads plus the write, enumeration,
// and deletion a rotating writer needs. Only the local-dir backend exists
// today; the interface is the seam where a remote backend slots in.
type ChunkStore interface {
	ByteSource
	// HasChunk reports whether the named chunk already exists — the
	// dedup fast path, letting a rotation skip framing and compressing
	// payloads it already stores.
	HasChunk(name string) (bool, error)
	// WriteChunk durably stores a framed chunk under name. Writing a
	// name that already exists is a no-op (content addressing makes the
	// bytes identical by construction).
	WriteChunk(name string, frame []byte) error
	// ListChunks returns the names of every stored object, including
	// stray files that are not valid chunk names (crash debris); the
	// garbage collector removes anything the current index does not
	// reference.
	ListChunks() ([]string, error)
	// DeleteChunk removes one stored object named by ListChunks.
	DeleteChunk(name string) error
	// Sync makes every completed WriteChunk durable. Called once per
	// rotation, after all chunk writes and before the index rotates, so
	// the index never references a chunk the disk could forget.
	Sync() error
}

// dirChunks is the local-directory ChunkStore: one file per chunk inside
// a dataset's chunks/ directory. Writes go through a same-directory temp
// file, fsync, and rename, so a crash mid-write leaves only a temp file —
// never a torn chunk under a valid name — and the next rotation's GC
// sweeps the debris.
type dirChunks struct {
	dir string
}

func newDirChunks(dir string) *dirChunks { return &dirChunks{dir: dir} }

func (c *dirChunks) path(name string) (string, error) {
	if !validChunkName(name) {
		return "", fmt.Errorf("store: invalid chunk name %q", name)
	}
	return filepath.Join(c.dir, name), nil
}

func (c *dirChunks) ReadChunk(name string) ([]byte, error) {
	p, err := c.path(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, fmt.Errorf("store: reading chunk %s: %w", name, err)
	}
	return data, nil
}

func (c *dirChunks) HasChunk(name string) (bool, error) {
	p, err := c.path(name)
	if err != nil {
		return false, err
	}
	if _, err := os.Stat(p); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return false, nil
		}
		return false, fmt.Errorf("store: probing chunk %s: %w", name, err)
	}
	return true, nil
}

func (c *dirChunks) WriteChunk(name string, frame []byte) error {
	p, err := c.path(name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(c.dir, 0o700); err != nil {
		return fmt.Errorf("store: creating chunk directory: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, name[:8]+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: writing chunk %s: %w", name, err)
	}
	tmpPath := tmp.Name()
	cleanup := func() {
		_ = tmp.Close()
		os.Remove(tmpPath)
	}
	if _, err := tmp.Write(frame); err != nil {
		cleanup()
		return fmt.Errorf("store: writing chunk %s: %w", name, err)
	}
	if err := tmp.Chmod(0o600); err != nil {
		cleanup()
		return fmt.Errorf("store: writing chunk %s: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("store: syncing chunk %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: writing chunk %s: %w", name, err)
	}
	if err := os.Rename(tmpPath, p); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: writing chunk %s: %w", name, err)
	}
	return nil
}

func (c *dirChunks) ListChunks() ([]string, error) {
	entries, err := os.ReadDir(c.dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: listing chunks: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	return names, nil
}

func (c *dirChunks) DeleteChunk(name string) error {
	// Names come from ListChunks (directory entries), which may include
	// crash debris with non-chunk names; only reject anything that could
	// escape the directory.
	if name != filepath.Base(name) || name == "." || name == ".." || strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("store: refusing to delete %q", name)
	}
	if err := os.Remove(filepath.Join(c.dir, name)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: deleting chunk %s: %w", name, err)
	}
	return nil
}

func (c *dirChunks) Sync() error {
	return syncDir(c.dir)
}
