package crypt

import (
	"crypto/rand"
	"encoding/base64"
	"errors"
	"fmt"
	"math/big"
)

// Paillier implements the Paillier public-key cryptosystem (probabilistic,
// additively homomorphic) from scratch on math/big. It is the paper's
// second baseline (the UTD Paillier toolbox in the original evaluation):
// probabilistic — so frequency-hiding — but destroys FDs and is orders of
// magnitude slower than the symmetric schemes, which Figure 8 demonstrates.
type Paillier struct {
	// Public key.
	N  *big.Int // n = p·q
	N2 *big.Int // n²
	G  *big.Int // generator g = n+1

	// Private key.
	lambda *big.Int // lcm(p-1, q-1)
	mu     *big.Int // (L(g^λ mod n²))⁻¹ mod n
}

// GeneratePaillier creates a key pair with |n| ≈ bits. The paper's toolbox
// defaults to 1024-bit keys; tests use smaller sizes for speed.
func GeneratePaillier(bits int) (*Paillier, error) {
	if bits < 64 {
		return nil, errors.New("crypt: paillier modulus too small")
	}
	for attempt := 0; attempt < 64; attempt++ {
		p, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, fmt.Errorf("crypt: paillier keygen: %w", err)
		}
		q, err := rand.Prime(rand.Reader, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("crypt: paillier keygen: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		pm1 := new(big.Int).Sub(p, big.NewInt(1))
		qm1 := new(big.Int).Sub(q, big.NewInt(1))
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Div(new(big.Int).Mul(pm1, qm1), gcd)

		n2 := new(big.Int).Mul(n, n)
		g := new(big.Int).Add(n, big.NewInt(1))

		// mu = (L(g^λ mod n²))⁻¹ mod n, with L(x) = (x-1)/n.
		glambda := new(big.Int).Exp(g, lambda, n2)
		l := paillierL(glambda, n)
		mu := new(big.Int).ModInverse(l, n)
		if mu == nil {
			continue // p, q unsuitable; retry
		}
		return &Paillier{N: n, N2: n2, G: g, lambda: lambda, mu: mu}, nil
	}
	return nil, errors.New("crypt: paillier keygen failed")
}

func paillierL(x, n *big.Int) *big.Int {
	return new(big.Int).Div(new(big.Int).Sub(x, big.NewInt(1)), n)
}

// EncryptInt encrypts m ∈ [0, n) as c = g^m · r^n mod n².
func (pk *Paillier) EncryptInt(m *big.Int) (*big.Int, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, errors.New("crypt: paillier plaintext out of range")
	}
	r, err := pk.randomUnit()
	if err != nil {
		return nil, err
	}
	// g = n+1 ⇒ g^m = 1 + m·n (mod n²), a standard speedup.
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, big.NewInt(1))
	gm.Mod(gm, pk.N2)
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c := gm.Mul(gm, rn)
	c.Mod(c, pk.N2)
	return c, nil
}

// DecryptInt recovers m = L(c^λ mod n²) · mu mod n.
func (pk *Paillier) DecryptInt(c *big.Int) (*big.Int, error) {
	if c.Sign() <= 0 || c.Cmp(pk.N2) >= 0 {
		return nil, errors.New("crypt: paillier ciphertext out of range")
	}
	clambda := new(big.Int).Exp(c, pk.lambda, pk.N2)
	m := paillierL(clambda, pk.N)
	m.Mul(m, pk.mu)
	m.Mod(m, pk.N)
	return m, nil
}

// AddCipher homomorphically adds two plaintexts: Dec(c1·c2 mod n²) = m1+m2.
func (pk *Paillier) AddCipher(c1, c2 *big.Int) *big.Int {
	out := new(big.Int).Mul(c1, c2)
	return out.Mod(out, pk.N2)
}

// MulConst homomorphically multiplies a plaintext by constant k:
// Dec(c^k mod n²) = k·m.
func (pk *Paillier) MulConst(c *big.Int, k *big.Int) *big.Int {
	return new(big.Int).Exp(c, k, pk.N2)
}

func (pk *Paillier) randomUnit() (*big.Int, error) {
	for {
		r, err := rand.Int(rand.Reader, pk.N)
		if err != nil {
			return nil, fmt.Errorf("crypt: paillier randomness: %w", err)
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, pk.N).Cmp(big.NewInt(1)) == 0 {
			return r, nil
		}
	}
}

// EncryptCell implements CellCipher over string cells: the cell's bytes are
// interpreted as a big integer (length-capped by the modulus).
func (pk *Paillier) EncryptCell(plain string) (string, error) {
	m := new(big.Int).SetBytes(append([]byte{1}, plain...)) // 1-prefix keeps leading zeros
	if m.Cmp(pk.N) >= 0 {
		return "", fmt.Errorf("crypt: cell too large for paillier modulus (%d bytes)", len(plain))
	}
	c, err := pk.EncryptInt(m)
	if err != nil {
		return "", err
	}
	return base64.RawURLEncoding.EncodeToString(c.Bytes()), nil
}

// DecryptCell inverts EncryptCell.
func (pk *Paillier) DecryptCell(ct string) (string, error) {
	raw, err := base64.RawURLEncoding.DecodeString(ct)
	if err != nil {
		return "", ErrCiphertext
	}
	m, err := pk.DecryptInt(new(big.Int).SetBytes(raw))
	if err != nil {
		return "", err
	}
	b := m.Bytes()
	if len(b) == 0 || b[0] != 1 {
		return "", ErrCiphertext
	}
	return string(b[1:]), nil
}
