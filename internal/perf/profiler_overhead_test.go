package perf

import (
	"context"
	"testing"
)

// TestProfilerOverheadMeasures runs the harness at toy scale: the point
// is that both sides execute, the medians are real, and the amortized
// figure derives from the duty cycle — not that the toy numbers clear
// any particular budget.
func TestProfilerOverheadMeasures(t *testing.T) {
	res, err := ProfilerOverhead(context.Background(), Scale{SizeFactor: 0.05, Seed: 1}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 || res.Rows == 0 {
		t.Fatalf("result shape: %+v", res)
	}
	if res.BaseMs <= 0 || res.ProfiledMs <= 0 {
		t.Fatalf("medians not measured: %+v", res)
	}
	wantDuty := DefaultProfilerDutyCycle() * 100
	if res.DutyCyclePct != wantDuty {
		t.Fatalf("duty cycle = %v, want default %v", res.DutyCyclePct, wantDuty)
	}
	if got := res.WindowPct * DefaultProfilerDutyCycle(); got != res.AmortizedPct {
		t.Fatalf("amortized %v != window %v × duty", res.AmortizedPct, res.WindowPct)
	}
	// An explicit duty cycle overrides the default.
	res2, err := ProfilerOverhead(context.Background(), Scale{SizeFactor: 0.05, Seed: 1}, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res2.DutyCyclePct != 50 {
		t.Fatalf("duty cycle = %v, want 50", res2.DutyCyclePct)
	}
}
