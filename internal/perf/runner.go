package perf

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"f2/internal/obs"
)

// stageAcc accumulates one stage's span durations within a worker.
type stageAcc struct {
	total time.Duration
	count int
}

// RunConfig bounds one measured run of a workload.
type RunConfig struct {
	// Concurrency is how many goroutines loop over the op (0 = 1). It is
	// clamped to the workload's MaxConcurrency.
	Concurrency int
	// WarmupOps executes (and discards) this many ops before the
	// measured window, so one-time costs (page faults, lazily built
	// caches) don't pollute the tail.
	WarmupOps int
	// Duration bounds the measured window's wall clock. 0 means
	// op-count-bound only.
	Duration time.Duration
	// MaxOps bounds the total measured op count. 0 means duration-bound
	// only. At least one of Duration/MaxOps must be set; the first op
	// always runs even if Duration has already elapsed.
	MaxOps int
	// Profile, when non-nil, captures profiles around the measured
	// window.
	Profile *ProfileConfig
	// Stages attaches a pipeline trace (internal/obs) to every measured
	// op and aggregates the per-stage span timings into RunResult.Stages.
	// The spans cover encrypt steps 1–4, incremental flush phases, WAL
	// appends/fsyncs, and snapshot rotation; workloads that cross an HTTP
	// boundary report no stages (the trace does not propagate over the
	// wire). Adds one trace allocation per op — leave it off when
	// measuring absolute latency ceilings.
	Stages bool
}

// RunResult is the machine-readable outcome of one run. Latencies are
// float64 milliseconds so reports diff cleanly and read naturally.
type RunResult struct {
	Workload    string  `json:"workload"`
	Concurrency int     `json:"concurrency"`
	Ops         int     `json:"ops"`
	Errors      int     `json:"errors,omitempty"`
	Cancelled   bool    `json:"cancelled,omitempty"`
	ElapsedMs   float64 `json:"elapsedMs"`

	P50Ms  float64 `json:"p50Ms"`
	P95Ms  float64 `json:"p95Ms"`
	P99Ms  float64 `json:"p99Ms"`
	MinMs  float64 `json:"minMs"`
	MeanMs float64 `json:"meanMs"`
	MaxMs  float64 `json:"maxMs"`

	OpsPerSec  float64 `json:"opsPerSec"`
	RowsPerSec float64 `json:"rowsPerSec,omitempty"`

	// Metrics carries workload-specific values, e.g. ciphertextExpansion.
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// Stages is the per-stage breakdown aggregated from the op traces
	// (RunConfig.Stages). Keys are span names ("encrypt.step1.mas",
	// "wal.fsync", ...); nested spans appear under their own names, so
	// totals across stages can exceed ElapsedMs.
	Stages map[string]StageStat `json:"stages,omitempty"`

	Profiles []ProfileRef    `json:"profiles,omitempty"`
	Runtime  *RuntimeSummary `json:"runtime,omitempty"`
}

// StageStat aggregates one pipeline stage across all measured ops.
type StageStat struct {
	TotalMs float64 `json:"totalMs"`
	Count   int     `json:"count"`
	MeanMs  float64 `json:"meanMs"`
}

func ms(ns time.Duration) float64 { return float64(ns.Nanoseconds()) / 1e6 }

// Run sets up and measures one workload. On context cancellation it
// returns the partial result (Cancelled=true) together with ctx.Err(),
// so a driver can both report what it measured and stop the sweep. Any
// other error means the run produced no usable result.
func Run(ctx context.Context, w Workload, sc Scale, rc RunConfig) (*RunResult, error) {
	if w.OpsCap > 0 && (rc.MaxOps <= 0 || rc.MaxOps > w.OpsCap) {
		rc.MaxOps = w.OpsCap
	}
	if rc.Duration <= 0 && rc.MaxOps <= 0 {
		return nil, fmt.Errorf("perf: run of %q needs a Duration or MaxOps bound", w.Name)
	}
	conc := rc.Concurrency
	if conc <= 0 {
		conc = w.DefaultConcurrency
	}
	if conc <= 0 {
		conc = 1
	}
	if w.MaxConcurrency > 0 && conc > w.MaxConcurrency {
		conc = w.MaxConcurrency
	}

	inst, err := w.Setup(ctx, sc)
	if err != nil {
		return nil, fmt.Errorf("perf: setting up %q: %w", w.Name, err)
	}
	if inst.Cleanup != nil {
		defer inst.Cleanup() //nolint:errcheck — best-effort teardown
	}

	for i := 0; i < rc.WarmupOps; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := inst.Op(ctx); err != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}

	var prof *profiler
	if rc.Profile != nil {
		prof = &profiler{cfg: *rc.Profile, workload: w.Name}
		if err := prof.start(); err != nil {
			return nil, err
		}
	}

	start := time.Now()
	var deadline time.Time
	if rc.Duration > 0 {
		deadline = start.Add(rc.Duration)
	}
	var claimed int64 // op tickets; the first ticket always runs
	recorders := make([]*Recorder, conc)
	stageAggs := make([]map[string]*stageAcc, conc)
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		rec := NewRecorder()
		recorders[i] = rec
		var stages map[string]*stageAcc
		if rc.Stages {
			stages = map[string]*stageAcc{}
		}
		stageAggs[i] = stages
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				ticket := atomic.AddInt64(&claimed, 1)
				if rc.MaxOps > 0 && ticket > int64(rc.MaxOps) {
					return
				}
				// The deadline never cancels the very first op: every run
				// must measure something.
				if ticket > 1 && !deadline.IsZero() && !time.Now().Before(deadline) {
					return
				}
				opCtx := ctx
				var tr *obs.Trace
				if rc.Stages {
					opCtx, tr = obs.NewTrace(ctx, "", "op")
				}
				t0 := time.Now()
				err := inst.Op(opCtx)
				if err != nil && ctx.Err() != nil {
					return // cancellation, not an op failure
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, &err)
				}
				rec.Record(time.Since(t0), err)
				if tr != nil && err == nil {
					tr.Finish()
					tr.Snapshot().EachSpan(func(name string, d time.Duration) {
						a := stages[name]
						if a == nil {
							a = &stageAcc{}
							stages[name] = a
						}
						a.total += d
						a.count++
					})
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	merged := recorders[0]
	for _, r := range recorders[1:] {
		merged.Merge(r)
	}
	var stages map[string]StageStat
	if rc.Stages {
		mergedStages := map[string]*stageAcc{}
		for _, m := range stageAggs {
			for name, a := range m {
				t := mergedStages[name]
				if t == nil {
					t = &stageAcc{}
					mergedStages[name] = t
				}
				t.total += a.total
				t.count += a.count
			}
		}
		if len(mergedStages) > 0 {
			stages = make(map[string]StageStat, len(mergedStages))
			for name, a := range mergedStages {
				stages[name] = StageStat{
					TotalMs: ms(a.total),
					Count:   a.count,
					MeanMs:  ms(a.total) / float64(a.count),
				}
			}
		}
	}

	res := &RunResult{
		Workload:    w.Name,
		Concurrency: conc,
		Ops:         merged.Count(),
		Errors:      merged.Errors(),
		Cancelled:   ctx.Err() != nil,
		ElapsedMs:   ms(elapsed),
		P50Ms:       ms(merged.Quantile(0.50)),
		P95Ms:       ms(merged.Quantile(0.95)),
		P99Ms:       ms(merged.Quantile(0.99)),
		MinMs:       ms(merged.Min()),
		MeanMs:      ms(merged.Mean()),
		MaxMs:       ms(merged.Max()),
		Stages:      stages,
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.OpsPerSec = float64(res.Ops) / sec
		if inst.RowsPerOp > 0 {
			res.RowsPerSec = float64(res.Ops*inst.RowsPerOp) / sec
		}
	}
	if inst.Metrics != nil {
		res.Metrics = inst.Metrics()
	}
	if prof != nil {
		refs, sum, perr := prof.stop()
		if perr != nil {
			return nil, perr
		}
		res.Profiles = refs
		res.Runtime = sum
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if res.Ops == 0 && res.Errors > 0 {
		return res, fmt.Errorf("perf: every op of %q failed: %w", w.Name, *firstErr.Load())
	}
	return res, nil
}

// Summary renders one run as a table row set (used by the CLI).
func (r *RunResult) Summary() string {
	return fmt.Sprintf("%-28s conc=%d ops=%d p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms %.1f op/s",
		r.Workload, r.Concurrency, r.Ops, r.P50Ms, r.P95Ms, r.P99Ms, r.MaxMs, r.OpsPerSec)
}
