// Package verify addresses the second future-work item of the paper's §7:
// a *malicious* (rather than curious-but-honest) server might cheat on the
// dependency-discovery results it returns. The data owner — who by
// assumption never computed her own FDs — can still check the server's
// claim cheaply:
//
//   - soundness is exact and cheap: validating one claimed FD against the
//     plaintext is a single linear scan, versus the exponential lattice
//     walk of discovery;
//   - completeness is spot-checked probabilistically: candidate
//     dependencies are sampled from the data's own agreement structure
//     (agreement sets of random row pairs, and the low-arity lattice
//     neighbourhood) and any holding dependency the claim fails to imply
//     is a counterexample.
//
// A cheating server that fabricates an FD is always caught; one that
// omits FDs is caught with probability growing in the number of probes.
package verify

import (
	"math/rand"

	"f2/internal/fd"
	"f2/internal/relation"
)

// Verdict is the outcome of checking a server's claimed FD set.
type Verdict struct {
	// Sound is false if some claimed FD does not hold on the data.
	Sound bool
	// FalseClaims lists claimed FDs that fail on the data.
	FalseClaims []fd.FD
	// Probes counts the completeness checks performed.
	Probes int
	// Missed lists holding dependencies not implied by the claim
	// (evidence of an incomplete answer).
	Missed []fd.FD
}

// OK reports whether the claim passed every check.
func (v *Verdict) OK() bool {
	return v.Sound && len(v.Missed) == 0
}

// CheckClaims validates the server-returned FD set against the owner's
// plaintext table with `probes` completeness samples. The claim is
// expected to cover every *holding* dependency (fd.Discover's contract).
func CheckClaims(t *relation.Table, claimed *fd.Set, probes int, seed int64) *Verdict {
	return checkClaimsWith(t, claimed, probes, seed, fd.Holds)
}

// CheckWitnessedClaims is CheckClaims for a server that returns the
// *witnessed* FDs of the outsourced table — the set F² preserves exactly
// (Theorem 3.7), and what f2served's /fds endpoint computes. Soundness
// and the completeness probes both test fd.Witnessed instead of fd.Holds:
// vacuously-true dependencies (unique LHS) are out of scope of a
// witnessed claim, so flagging them as missing would be spurious.
func CheckWitnessedClaims(t *relation.Table, claimed *fd.Set, probes int, seed int64) *Verdict {
	return checkClaimsWith(t, claimed, probes, seed, fd.Witnessed)
}

// checkClaimsWith runs the soundness scan and completeness probing with
// `valid` as the notion of a dependency the claim must cover.
func checkClaimsWith(t *relation.Table, claimed *fd.Set, probes int, seed int64, valid func(*relation.Table, fd.FD) bool) *Verdict {
	v := &Verdict{Sound: true}
	// Soundness: every claimed FD must be valid. Exact.
	for _, f := range claimed.Slice() {
		if !valid(t, f) {
			v.Sound = false
			v.FalseClaims = append(v.FalseClaims, f)
		}
	}

	// Completeness probes.
	rng := rand.New(rand.NewSource(seed))
	m := t.NumAttrs()
	n := t.NumRows()
	seen := make(map[fd.FD]bool)
	probe := func(f fd.FD) {
		if f.Trivial() || f.LHS.IsEmpty() || seen[f] {
			return
		}
		seen[f] = true
		v.Probes++
		if valid(t, f) && !fd.Implies(claimed, f) {
			v.Missed = append(v.Missed, f)
		}
	}

	// (a) Every single-attribute dependency: cheap and the most common
	// kind of rule.
	for a := 0; a < m && m > 1; a++ {
		for b := 0; b < m; b++ {
			if a != b {
				probe(fd.FD{LHS: relation.SingleAttr(a), RHS: b})
			}
		}
	}
	// (b) Agreement-guided random probes: the agreement set of a random
	// row pair is exactly a maximal candidate LHS that the data itself
	// witnesses; a random subset of it plus a random RHS makes a sharp
	// probe.
	for i := 0; i < probes && n >= 2; i++ {
		r1, r2 := rng.Intn(n), rng.Intn(n)
		if r1 == r2 {
			continue
		}
		var agree relation.AttrSet
		for a := 0; a < m; a++ {
			if t.Cell(r1, a) == t.Cell(r2, a) {
				agree = agree.Add(a)
			}
		}
		if agree.IsEmpty() {
			continue
		}
		// Random non-empty subset of the agreement set as LHS.
		attrs := agree.Attrs()
		var lhs relation.AttrSet
		for _, a := range attrs {
			if rng.Intn(2) == 0 {
				lhs = lhs.Add(a)
			}
		}
		if lhs.IsEmpty() {
			lhs = relation.SingleAttr(attrs[rng.Intn(len(attrs))])
		}
		probe(fd.FD{LHS: lhs, RHS: rng.Intn(m)})
	}
	return v
}

// CheckAgainstDiscovery is the expensive gold check used in tests and
// audits: rediscover the FDs locally and compare covers exactly. Returns
// (missing-from-claim, fabricated-in-claim).
func CheckAgainstDiscovery(t *relation.Table, claimed *fd.Set) (missing, fabricated []fd.FD) {
	truth := fd.Discover(t)
	for _, f := range truth.Slice() {
		if !fd.Implies(claimed, f) {
			missing = append(missing, f)
		}
	}
	for _, f := range claimed.Slice() {
		if !fd.Implies(truth, f) {
			fabricated = append(fabricated, f)
		}
	}
	return missing, fabricated
}
