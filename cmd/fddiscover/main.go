// Command fddiscover runs server-side dependency discovery on a CSV table
// (plaintext or F²-encrypted — the algorithms only use cell equality):
// TANE for minimal functional dependencies and the DUCC-style border
// search for maximal attribute sets.
//
// Usage:
//
//	fddiscover -in table.csv [-mas] [-witnessed]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"f2/internal/fd"
	"f2/internal/mas"
	"f2/internal/relation"
)

func main() {
	var (
		in        = flag.String("in", "", "input CSV (header row required)")
		masOnly   = flag.Bool("mas", false, "discover MASs instead of FDs")
		witnessed = flag.Bool("witnessed", false, "report only witnessed FDs (non-unique LHS)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "fddiscover: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	tbl, err := relation.ReadCSVFile(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fddiscover:", err)
		os.Exit(1)
	}
	sch := tbl.Schema()
	start := time.Now()
	if *masOnly {
		res := mas.Discover(tbl)
		fmt.Printf("%d maximal attribute sets (%d uniqueness checks, %v):\n",
			len(res.Sets), res.Checked, time.Since(start).Round(time.Millisecond))
		for _, m := range res.Sets {
			p := res.Partitions[m]
			fmt.Printf("  %s  (%d equivalence classes, largest %d)\n",
				m.Names(sch), p.NumClasses(), p.MaxClassSize())
		}
		return
	}
	var set *fd.Set
	if *witnessed {
		set = fd.DiscoverWitnessed(tbl)
	} else {
		set = fd.Discover(tbl)
	}
	fmt.Printf("%d minimal FDs (%v):\n", set.Len(), time.Since(start).Round(time.Millisecond))
	for _, f := range set.Slice() {
		fmt.Printf("  %s\n", f.Names(sch))
	}
}
