package core

import (
	"context"
	"math/rand"
	"testing"

	"f2/internal/crypt"
	"f2/internal/fd"
	"f2/internal/relation"
)

func testConfig(alpha float64) Config {
	cfg := DefaultConfig(crypt.KeyFromSeed("f2-test-key"))
	cfg.Alpha = alpha
	return cfg
}

func encryptTable(t *testing.T, tbl *relation.Table, cfg Config) *Result {
	t.Helper()
	enc, err := NewEncryptor(cfg)
	if err != nil {
		t.Fatalf("NewEncryptor: %v", err)
	}
	res, err := enc.Encrypt(context.Background(), tbl)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	return res
}

// figure1Table is the base table D of Figure 1(a): FD A→B.
func figure1Table() *relation.Table {
	return relation.MustFromRows(relation.MustSchema("A", "B", "C"), [][]string{
		{"a1", "b1", "c1"},
		{"a1", "b1", "c2"},
		{"a1", "b1", "c3"},
		{"a1", "b1", "c1"},
	})
}

func TestEncryptFigure1PreservesFD(t *testing.T) {
	tbl := figure1Table()
	res := encryptTable(t, tbl, testConfig(0.5))

	want := fd.DiscoverWitnessed(tbl)
	got := fd.DiscoverWitnessed(res.Encrypted)
	if !want.Equal(got) {
		t.Fatalf("witnessed FDs differ:\n plain: %v\n cipher: %v\n report: %v",
			want, got, res.Report.String())
	}
	if !want.Has(fd.FD{LHS: relation.NewAttrSet(0), RHS: 1}) {
		t.Fatalf("expected A→B among plaintext FDs, got %v", want)
	}
}

func TestEncryptRoundTrip(t *testing.T) {
	tbl := figure1Table()
	cfg := testConfig(0.25)
	res := encryptTable(t, tbl, cfg)
	dec, err := NewDecryptor(cfg)
	if err != nil {
		t.Fatalf("NewDecryptor: %v", err)
	}
	back, err := dec.Recover(context.Background(), res)
	if err != nil {
		t.Fatalf("Recover: %v\nreport: %v", err, res.Report.String())
	}
	if back.NumRows() != tbl.NumRows() {
		t.Fatalf("recovered %d rows, want %d", back.NumRows(), tbl.NumRows())
	}
	for i := 0; i < tbl.NumRows(); i++ {
		for a := 0; a < tbl.NumAttrs(); a++ {
			if back.Cell(i, a) != tbl.Cell(i, a) {
				t.Fatalf("cell (%d,%d): got %q want %q", i, a, back.Cell(i, a), tbl.Cell(i, a))
			}
		}
	}
}

// TestEncryptFrequencyFlattened checks the α-security core invariant: in
// the encrypted table, for every attribute, every ciphertext frequency f>1
// class has at least k distinct ciphertext values of that same frequency.
func TestEncryptFrequencyFlattened(t *testing.T) {
	tbl := relation.MustFromRows(relation.MustSchema("A", "B"), [][]string{
		{"a1", "b1"}, {"a1", "b1"}, {"a1", "b1"}, {"a1", "b1"}, {"a1", "b1"},
		{"a2", "b3"}, {"a2", "b3"},
		{"a3", "b2"}, {"a3", "b2"}, {"a3", "b2"}, {"a3", "b2"},
		{"a4", "b4"}, {"a4", "b4"}, {"a4", "b4"},
	})
	cfg := testConfig(1.0 / 3.0)
	res := encryptTable(t, tbl, cfg)
	k := cfg.K()
	for a := 0; a < res.Encrypted.NumAttrs(); a++ {
		freq := res.Encrypted.Freq(a)
		byCount := make(map[int]int)
		for _, f := range freq {
			if f > 1 {
				byCount[f]++
			}
		}
		for f, vals := range byCount {
			if vals < k {
				t.Errorf("attr %d: only %d ciphertexts of frequency %d (< k=%d)\n%v",
					a, vals, f, k, res.Report.String())
			}
		}
	}
}

// TestEncryptRandomTablesPreserveFDs is the headline property test:
// witnessed FDs of random small tables survive encryption exactly.
func TestEncryptRandomTablesPreserveFDs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		tbl := randomTable(rng, 4, 24, 3)
		cfg := testConfig([]float64{0.5, 1.0 / 3.0, 0.25}[trial%3])
		res := encryptTable(t, tbl, cfg)

		want := fd.DiscoverWitnessed(tbl)
		got := fd.DiscoverWitnessed(res.Encrypted)
		if !want.Equal(got) {
			t.Fatalf("trial %d: witnessed FDs differ\n plain:  %v\n cipher: %v\n missing: %v\n extra:   %v\n table:\n%v\nreport: %v",
				trial, want, got, want.Diff(got), got.Diff(want), tbl, res.Report.String())
		}
	}
}

// randomTable builds a random table with small value domains so FDs and
// duplicates occur frequently.
func randomTable(rng *rand.Rand, attrs, rows, domain int) *relation.Table {
	names := make([]string, attrs)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	tbl := relation.NewTable(relation.MustSchema(names...))
	for r := 0; r < rows; r++ {
		row := make([]string, attrs)
		for a := range row {
			row[a] = string(rune('a'+a)) + string(rune('0'+rng.Intn(domain)))
		}
		tbl.AppendRow(row)
	}
	return tbl
}
