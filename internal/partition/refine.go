package partition

import (
	"fmt"
	"strconv"

	"f2/internal/relation"
)

// Delta describes how an append-aware Refine changed a partition: which
// pre-existing classes absorbed appended rows and which classes the
// appended rows created. Indices refer to the refined partition's Classes
// slice (pre-existing classes keep their positions; born classes are
// appended in first-occurrence order).
type Delta struct {
	// Grown lists classes that existed before the append and gained rows.
	Grown []int
	// Born lists classes created by appended rows. A born class of size ≥ 2
	// means two appended rows share a projection the old table never had.
	Born []int
}

// Changed reports whether the append touched the partition at all.
func (d Delta) Changed() bool { return len(d.Grown) > 0 || len(d.Born) > 0 }

// Refine extends p — which must have been computed over the first oldRows
// rows of t — with the appended rows t[oldRows:]. It returns a fresh
// partition plus the delta; p itself is never modified (untouched classes
// are shared by reference, grown classes are copied before their row lists
// are extended), so a caller that aborts mid-update can keep using p.
//
// Cost is O(|classes| + Δ·|X|): the class index is rebuilt from the stored
// representatives, not by re-hashing the old rows.
func (p *Partition) Refine(t *relation.Table, oldRows int) (*Partition, Delta, error) {
	if p.numRows != oldRows {
		return nil, Delta{}, fmt.Errorf("partition: refine: partition covers %d rows, caller says %d", p.numRows, oldRows)
	}
	if t.NumRows() < oldRows {
		return nil, Delta{}, fmt.Errorf("partition: refine: table has %d rows, fewer than the %d already partitioned", t.NumRows(), oldRows)
	}
	out := &Partition{Attrs: p.Attrs, numRows: t.NumRows()}
	out.Classes = append(make([]*EC, 0, len(p.Classes)), p.Classes...)
	index := p.index
	if index == nil || len(index) != len(p.Classes) {
		index = make(map[string]int, len(p.Classes)+16)
		for i, c := range p.Classes {
			index[relation.KeyOfValues(c.Representative)] = i
		}
		p.index = index
	}
	// Project keys are composed in a reused byte buffer: the map lookup on
	// string(kb) does not allocate, so in the steady state (appended rows
	// landing in existing classes) the whole loop is allocation-free. The
	// key format must match relation.KeyOfValues exactly.
	attrs := p.Attrs.Attrs()
	cols := make([][]string, len(attrs))
	for k, a := range attrs {
		cols[k] = t.Column(a)
	}
	kb := make([]byte, 0, 64)
	var d Delta
	cloned := make(map[int]bool)
	for r := oldRows; r < t.NumRows(); r++ {
		kb = kb[:0]
		for _, col := range cols {
			v := col[r]
			kb = strconv.AppendInt(kb, int64(len(v)), 10)
			kb = append(kb, ':')
			kb = append(kb, v...)
		}
		ci, ok := index[string(kb)]
		if !ok {
			ci = len(out.Classes)
			index[string(kb)] = ci
			out.Classes = append(out.Classes, &EC{Rows: []int{r}, Representative: t.Project(r, p.Attrs)})
			d.Born = append(d.Born, ci)
			continue
		}
		if ci < len(p.Classes) && !cloned[ci] {
			old := p.Classes[ci]
			out.Classes[ci] = &EC{
				Rows:           append(append(make([]int, 0, len(old.Rows)+1), old.Rows...), r),
				Representative: old.Representative,
			}
			cloned[ci] = true
			d.Grown = append(d.Grown, ci)
			continue
		}
		out.Classes[ci].Rows = append(out.Classes[ci].Rows, r)
	}
	out.index = index
	return out, d, nil
}

// Refine extends the stripped partition s — computed over the first
// oldRows rows of t — with the appended rows t[oldRows:]. Because a
// stripped partition does not represent singleton classes, detecting a
// singleton→pair promotion needs one hashing pass over the old rows; that
// is still far cheaper than the partition products the result feeds
// (and, like Partition.Refine, s itself is never modified).
func (s *Stripped) Refine(t *relation.Table, oldRows int) (*Stripped, error) {
	if s.numRows != oldRows {
		return nil, fmt.Errorf("partition: refine: stripped partition covers %d rows, caller says %d", s.numRows, oldRows)
	}
	if t.NumRows() < oldRows {
		return nil, fmt.Errorf("partition: refine: table has %d rows, fewer than the %d already partitioned", t.NumRows(), oldRows)
	}
	out := &Stripped{Attrs: s.Attrs, numRows: t.NumRows()}
	out.Classes = append(make([][]int, 0, len(s.Classes)), s.Classes...)
	index := make(map[string]int, len(s.Classes))
	inClass := make([]bool, oldRows)
	for i, c := range s.Classes {
		index[t.ProjectKey(c[0], s.Attrs)] = i
		for _, r := range c {
			inClass[r] = true
		}
	}
	single := make(map[string]int)
	for r := 0; r < oldRows; r++ {
		if !inClass[r] {
			single[t.ProjectKey(r, s.Attrs)] = r
		}
	}
	cloned := make(map[int]bool)
	for r := oldRows; r < t.NumRows(); r++ {
		k := t.ProjectKey(r, s.Attrs)
		if ci, ok := index[k]; ok {
			if ci < len(s.Classes) && !cloned[ci] {
				out.Classes[ci] = append(append(make([]int, 0, len(s.Classes[ci])+1), s.Classes[ci]...), r)
				cloned[ci] = true
			} else {
				out.Classes[ci] = append(out.Classes[ci], r)
			}
			continue
		}
		if prev, ok := single[k]; ok {
			// Promotion: an old singleton and an appended row now pair up.
			delete(single, k)
			index[k] = len(out.Classes)
			out.Classes = append(out.Classes, []int{prev, r})
			continue
		}
		single[k] = r
	}
	return out, nil
}
