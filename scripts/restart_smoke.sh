#!/usr/bin/env bash
# restart_smoke.sh — end-to-end restart-recovery check for f2served.
#
# Starts f2served with a temp data dir, creates a dataset, appends rows
# (flushed and pending), SIGTERMs the process, restarts it over the same
# directory, and verifies the dataset survived: the decrypt round-trips
# every acknowledged row, appends still work, and DELETE removes the
# dataset from the registry, the metrics gauge, and the store directory.
#
# Needs: go, curl. Used by CI; runnable locally from the repo root.
set -euo pipefail

ADDR="127.0.0.1:${F2_SMOKE_PORT:-8097}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
DATA="$WORK/data"
BIN="$WORK/f2served"
PID=""
RUN=0
SERVER_LOG=""

cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

die() {
  echo "restart_smoke: FAIL: $*" >&2
  if [ -n "$SERVER_LOG" ] && [ -f "$SERVER_LOG" ]; then
    echo "--- last server log lines ($SERVER_LOG):" >&2
    tail -20 "$SERVER_LOG" >&2 || true
  fi
  exit 1
}

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fs "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  die "server at $BASE never became healthy"
}

start_server() {
  RUN=$((RUN + 1))
  SERVER_LOG="$WORK/server-run$RUN.log"
  "$BIN" -addr "$ADDR" -data-dir "$DATA" >"$SERVER_LOG" 2>&1 &
  PID=$!
  wait_healthy
}

stop_server() {
  kill -TERM "$PID"
  wait "$PID" 2>/dev/null || true
  PID=""
}

# Recovery and request handling must be ERROR-free: every HTTP check can
# pass while the server quietly logs a recovery failure it papered over.
# Any ERROR-level slog record (JSON or text handler) fails the run.
check_logs() {
  if grep -En '"level":"ERROR"|level=ERROR' "$WORK"/server-run*.log >&2; then
    die "unexpected ERROR-level log records (lines above)"
  fi
}

# /metrics must be a well-formed Prometheus exposition: every sample
# family carries HELP and TYPE, no series (name+labels) appears twice,
# and the flight recorder's f2_runtime_* series are present. A renamed
# gauge or a double-registered callback shows up here, not in a scrape
# dashboard three weeks later.
check_metrics() {
  local metrics="$1"
  local problems
  problems="$(printf '%s\n' "$metrics" | awk '
    /^# HELP /  { help[$3] = 1; next }
    /^# TYPE /  { type[$3] = 1; next }
    /^#/        { next }
    /^[[:space:]]*$/ { next }
    {
      series = $0
      sub(/ [^ ]*$/, "", series)      # strip the value
      if (seen[series]++) { print "duplicate series: " series; bad = 1 }
      fam = series
      sub(/\{.*/, "", fam)            # strip labels
      base = fam
      sub(/_(bucket|sum|count|max)$/, "", base)   # histogram children share the family HELP/TYPE
      if (!(fam in help) && !(base in help)) { print "missing HELP for " fam; bad = 1 }
      if (!(fam in type) && !(base in type)) { print "missing TYPE for " fam; bad = 1 }
    }
    END { exit bad }
  ' 2>&1)" || {
    printf '%s\n' "$problems" >&2
    die "malformed /metrics exposition (details above)"
  }
  printf '%s' "$metrics" | grep -q '^f2_runtime_heap_bytes ' \
    || die "f2_runtime_heap_bytes missing from /metrics"
  printf '%s' "$metrics" | grep -q '^f2_runtime_goroutines ' \
    || die "f2_runtime_goroutines missing from /metrics"
  printf '%s' "$metrics" | grep -q '^f2_runtime_gc_pause_seconds{quantile="0.99"}' \
    || die "f2_runtime_gc_pause_seconds quantile series missing from /metrics"
}

echo "== build"
go build -o "$BIN" ./cmd/f2served

echo "== first run: create + append + flush"
start_server

CREATE_RESP="$(curl -fs "$BASE/v1/datasets" -d '{
  "name": "smoke",
  "columns": ["G", "ID"],
  "rows": [["g1","id1"],["g1","id2"],["g1","id3"],["g2","id4"],["g2","id5"]],
  "keySeed": "restart-smoke-key"
}')"
ID="$(printf '%s' "$CREATE_RESP" | grep -o 'ds_[0-9a-f]\{12\}' | head -1)"
[ -n "$ID" ] || die "no dataset id in create response: $CREATE_RESP"
echo "   dataset $ID"

# This batch crosses the auto-flush threshold; the next row stays pending.
curl -fs "$BASE/v1/datasets/$ID/rows" -d '{"rows":[["g1","id6"],["g2","id7"]]}' >/dev/null
curl -fs "$BASE/v1/datasets/$ID/rows" -d '{"rows":[["g1","id8"]]}' >/dev/null

echo "== SIGTERM + restart"
stop_server
start_server

echo "== verify recovery"
GET_RESP="$(curl -fs "$BASE/v1/datasets/$ID")"
printf '%s' "$GET_RESP" | grep -q '"rows":7' || die "recovered dataset rows != 7: $GET_RESP"
printf '%s' "$GET_RESP" | grep -q '"pendingRows":1' || die "recovered pending != 1: $GET_RESP"

curl -fs -X POST "$BASE/v1/datasets/$ID/flush?wait=1" >/dev/null
DECRYPT="$(curl -fs -X POST "$BASE/v1/datasets/$ID/decrypt")"
for rowid in id1 id2 id3 id4 id5 id6 id7 id8; do
  printf '%s' "$DECRYPT" | grep -q "\"$rowid\"" || die "row $rowid lost across restart: $DECRYPT"
done
# Appends keep working on the recovered dataset.
curl -fs "$BASE/v1/datasets/$ID/rows" -d '{"rows":[["g2","id9"]]}' >/dev/null

echo "== delete"
curl -fs -X DELETE "$BASE/v1/datasets/$ID" >/dev/null
STATUS="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/datasets/$ID")"
[ "$STATUS" = "404" ] || die "deleted dataset still served (status $STATUS)"
# Capture before grepping: grep -q's early exit would SIGPIPE curl and
# trip pipefail even on a match.
METRICS="$(curl -fs "$BASE/metrics")"
printf '%s' "$METRICS" | grep -q '^f2_datasets 0$' || die "f2_datasets gauge not decremented"
echo "== validate metrics exposition"
check_metrics "$METRICS"
[ ! -d "$DATA/datasets/$ID" ] || die "store directory survives delete"

# And deletion is durable too.
stop_server
start_server
STATUS="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/datasets/$ID")"
[ "$STATUS" = "404" ] || die "deleted dataset resurrected after restart (status $STATUS)"

echo "== scan server logs"
stop_server
check_logs

echo "restart_smoke: PASS"
