package perf

import (
	"strings"
	"testing"
)

// mkReport builds a one-run report with the given p95 and rows/sec (the
// other latency fields scale off p95 so only the metric under test
// moves).
func mkReport(p95, rowsPerSec float64) *Report {
	r := NewReport("t", Scale{})
	r.Runs = []RunResult{{
		Workload: "encrypt/full", Ops: 100,
		P50Ms: p95 / 2, P95Ms: p95, P99Ms: p95,
		OpsPerSec: rowsPerSec / 100, RowsPerSec: rowsPerSec,
	}}
	return r
}

func findDelta(ds []Delta, metric string) *Delta {
	for i := range ds {
		if ds[i].Metric == metric {
			return &ds[i]
		}
	}
	return nil
}

func TestCompareRegression(t *testing.T) {
	old, new := mkReport(100, 1000), mkReport(150, 1000)
	c := Compare(old, new, 10)
	if c.OK() {
		t.Fatal("a 50% p95 regression passed a 10% gate")
	}
	d := findDelta(c.Regressions, "p95Ms")
	if d == nil {
		t.Fatalf("no p95Ms regression in %+v", c.Regressions)
	}
	if d.Old != 100 || d.New != 150 || d.ChangePct != 50 {
		t.Errorf("delta = %+v, want old=100 new=150 change=50%%", d)
	}
	// p50 moved identically (mkReport scales it), p99 too: 3 latency
	// regressions total, throughput unchanged.
	if len(c.Regressions) != 3 {
		t.Errorf("got %d regressions, want 3 (p50, p95, p99): %+v", len(c.Regressions), c.Regressions)
	}
}

func TestCompareThroughputRegression(t *testing.T) {
	old, new := mkReport(100, 1000), mkReport(100, 800)
	c := Compare(old, new, 10)
	d := findDelta(c.Regressions, "rowsPerSec")
	if d == nil {
		t.Fatalf("a 20%% rows/sec drop passed a 10%% gate: %+v", c.Regressions)
	}
	if d.ChangePct != 25 {
		t.Errorf("change = %v%%, want a 25%% slowdown factor (1000/800 - 1)", d.ChangePct)
	}
}

// TestCompareThroughputCollapseBeatsGenerousThreshold: the slowdown
// factor is unbounded, so even the CI gate's generous 400% threshold
// fires on a big throughput collapse (the capped (old-new)/old form
// could never exceed 100%).
func TestCompareThroughputCollapseBeatsGenerousThreshold(t *testing.T) {
	old, new := mkReport(0.01, 6000), mkReport(0.01, 1000) // 6x collapse, latencies sub-noise-floor
	c := Compare(old, new, 400)
	d := findDelta(c.Regressions, "rowsPerSec")
	if d == nil {
		t.Fatalf("a 6x throughput collapse passed a 400%% gate: %+v", c.Regressions)
	}
	if d.ChangePct != 500 {
		t.Errorf("change = %v%%, want 500%% (6000/1000 - 1)", d.ChangePct)
	}
}

func TestCompareImprovement(t *testing.T) {
	old, new := mkReport(100, 1000), mkReport(50, 2000)
	c := Compare(old, new, 10)
	if !c.OK() {
		t.Fatalf("an improvement failed the gate: %+v", c.Regressions)
	}
	if findDelta(c.Improvements, "p95Ms") == nil || findDelta(c.Improvements, "rowsPerSec") == nil {
		t.Errorf("improvements not reported: %+v", c.Improvements)
	}
}

// TestCompareThresholdBoundary: movement of exactly the threshold passes
// (the gate is strictly greater-than), one tick beyond fails.
func TestCompareThresholdBoundary(t *testing.T) {
	// 100 -> 110 is exactly +10%, representable without FP error.
	c := Compare(mkReport(100, 1000), mkReport(110, 1000), 10)
	if !c.OK() {
		t.Errorf("exactly-threshold latency move failed the gate: %+v", c.Regressions)
	}
	// 1280 -> 1024 rows/sec is exactly a 25% slowdown factor
	// (1280/1024 = 1.25, FP-exact).
	c = Compare(mkReport(100, 1280), mkReport(100, 1024), 25)
	if !c.OK() {
		t.Errorf("exactly-threshold throughput move failed the gate: %+v", c.Regressions)
	}
	// One tick past it fails.
	c = Compare(mkReport(100, 1280), mkReport(100, 1000), 25)
	if c.OK() {
		t.Error("a past-threshold throughput slowdown passed the gate")
	}
	// Just past the boundary fails.
	c = Compare(mkReport(100, 1000), mkReport(111, 1000), 10)
	if c.OK() {
		t.Error("10.99% more than threshold passed the gate")
	}
	// And the identical report always passes.
	same := mkReport(100, 1000)
	if c := Compare(same, same, 10); !c.OK() || len(c.Improvements) != 0 {
		t.Errorf("self-compare not clean: %+v", c)
	}
}

// TestCompareNoiseFloor: sub-50µs quantiles never gate — at that
// resolution a 10% threshold flags scheduler jitter.
func TestCompareNoiseFloor(t *testing.T) {
	c := Compare(mkReport(0.01, 0), mkReport(0.04, 0), 10)
	if d := findDelta(c.Regressions, "p95Ms"); d != nil {
		t.Errorf("sub-noise-floor latencies gated: %+v", d)
	}
}

func TestCompareMissingAndAdded(t *testing.T) {
	old, new := mkReport(100, 1000), mkReport(100, 1000)
	old.Runs = append(old.Runs, RunResult{Workload: "gone/away", Ops: 5, P95Ms: 1})
	new.Runs = append(new.Runs, RunResult{Workload: "brand/new", Ops: 5, P95Ms: 1})
	c := Compare(old, new, 10)
	if !c.OK() {
		t.Fatal("workload set drift must not fail the gate")
	}
	if len(c.Missing) != 1 || c.Missing[0] != "gone/away" {
		t.Errorf("missing = %v", c.Missing)
	}
	if len(c.Added) != 1 || c.Added[0] != "brand/new" {
		t.Errorf("added = %v", c.Added)
	}
}

// TestCompareSkipsUnusableRuns: cancelled or op-less runs carry no
// signal and must not gate.
func TestCompareSkipsUnusableRuns(t *testing.T) {
	old, new := mkReport(100, 1000), mkReport(500, 100)
	new.Runs[0].Cancelled = true
	if c := Compare(old, new, 10); !c.OK() {
		t.Errorf("a cancelled run gated: %+v", c.Regressions)
	}
	new.Runs[0].Cancelled = false
	new.Runs[0].Ops = 0
	if c := Compare(old, new, 10); !c.OK() {
		t.Errorf("an op-less run gated: %+v", c.Regressions)
	}
}

func TestCompareRender(t *testing.T) {
	old, new := mkReport(100, 1000), mkReport(150, 1000)
	c := Compare(old, new, 10)
	out := c.Render(old, new)
	for _, want := range []string{"REGRESSIONS", "encrypt/full", "p95Ms", "50.0% worse", "threshold 10%"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered comparison missing %q:\n%s", want, out)
		}
	}
	ok := Compare(old, old, 10)
	if out := ok.Render(old, old); !strings.Contains(out, "no regressions") {
		t.Errorf("clean comparison missing the all-clear:\n%s", out)
	}
}
