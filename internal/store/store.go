// Package store persists f2served datasets on disk so a restart — clean
// or crashed — recovers every dataset to its last transactional state.
//
// Layout under the data directory:
//
//	<dir>/master.key              service master key (hex, 0600)
//	<dir>/datasets/<id>/snapshot.json   index blob (v2) or monolithic snapshot (v1)
//	<dir>/datasets/<id>/chunks/<sha256> content-addressed data chunks (v2)
//	<dir>/datasets/<id>/wal.log
//
// Each dataset is a snapshot plus a write-ahead log. The snapshot's index
// blob holds the dataset's configuration, schema, WAL watermark, and a
// manifest of content-addressed chunks carrying the bulky sections of the
// serialized updater state (plaintext rows, ciphertext rows, provenance,
// pending buffer — see rotate.go and chunks.go); the dataset key is
// stored encrypted under the service master key, never in the clear. The
// index is rotated atomically (write temp + fsync + rename) after every
// chunk it references is durable, so a crash at any point leaves the
// previous snapshot fully readable; a rotation-time GC then unlinks
// chunks the new index no longer references. Boot reads only the index
// (LoadAll); the full state hydrates on demand (LoadState). Snapshots
// written by the v1 monolithic format still load — eagerly — and are
// upgraded to v2 the next time they are saved.
//
// The WAL journals every append batch before the service acknowledges it.
// Journal writes are group-committed: concurrent appends stage framed
// records, and a per-dataset committer goroutine writes and fsyncs them
// in one batch per window (see groupcommit.go). After a successful flush
// the server writes a fresh snapshot recording the highest batch sequence
// it includes (the watermark), then compacts the WAL down to the batches
// above that watermark — batches journaled concurrently with the snapshot
// survive. Boot recovery loads the snapshot and replays only WAL batches
// with a higher sequence, so every crash point — mid-append, mid-flush,
// between snapshot and compaction — recovers without losing acknowledged
// rows or duplicating applied ones.
package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"f2/internal/core"
	"f2/internal/crypt"
	"f2/internal/obs"
)

const (
	masterKeyFile = "master.key"
	datasetsDir   = "datasets"
	snapshotName  = "snapshot.json"
	walName       = "wal.log"
)

// Record is one dataset's durable state as the server sees it: identity,
// configuration (with the key in the clear — sealing happens inside the
// store), the serialized updater, and the WAL sequence watermark the
// updater state includes.
type Record struct {
	ID      string
	Name    string
	Created time.Time
	Config  core.Config
	Updater *core.UpdaterState
	// WALSeq is the highest journaled batch sequence already applied to
	// (buffered or flushed into) Updater. Replay skips batches at or below
	// it.
	WALSeq uint64
}

// DatasetStats are the index-level facts about a lazily loaded dataset:
// enough to serve listings and summaries without hydrating a single
// chunk. PendingRows counts only the snapshot's buffered rows; the WAL
// tail's rows come on top (the caller sees the tail and can add them).
type DatasetStats struct {
	Rows          int
	PendingRows   int
	EncryptedRows int
	Meta          core.UpdaterMeta
}

// Loaded is a recovered dataset: its snapshot record plus the WAL tail —
// acknowledged batches the snapshot does not include, in journal order —
// which the caller must replay through the updater.
//
// For a v2 chunked snapshot, boot is lazy: Lazy is true, Record.Updater
// is nil, Stats carries the index-level numbers, and the caller hydrates
// the full state later via LoadState (then replays Tail). For a v1
// monolithic snapshot, Legacy is true and Record.Updater is populated
// eagerly; saving the dataset again upgrades it to v2 in place.
type Loaded struct {
	Record
	Tail   []Batch
	Lazy   bool
	Legacy bool
	Stats  *DatasetStats
}

// Store is the durable dataset store. All methods are safe for concurrent
// use; concurrent appends to one dataset are serialized (and coalesced)
// by that dataset's committer goroutine, and compaction flows through the
// same committer, so callers need no external ordering of their own.
type Store struct {
	dir       string
	master    *crypt.ProbCipher
	chunkRows int

	mu   sync.Mutex
	wals map[string]*walWriter // group-commit writers by dataset id

	rotMu sync.Mutex
	rots  map[string]*sync.RWMutex // per-dataset rotation locks

	gcMu   sync.Mutex
	gcDebt map[string]string // dataset id -> last failed chunk-sweep error

	stats walStats
	snap  snapStats

	// testCrash, when set by a test, is invoked at rotation checkpoints
	// ("chunk" after each chunk write, "index" before the index rotates,
	// "gc" after each unlink); returning an error aborts the save there,
	// simulating a crash at that point.
	testCrash func(point string) error
}

// Options tunes a Store beyond its data directory.
type Options struct {
	// ChunkRows is the number of table rows per content-addressed
	// snapshot chunk. Smaller chunks dedup at a finer grain (an
	// incremental flush rewrites less); larger chunks mean fewer files
	// and a smaller manifest. 0 means the default (512).
	ChunkRows int
}

// Open initializes the store at dir with default options.
func Open(dir string) (*Store, error) { return OpenOptions(dir, Options{}) }

// OpenOptions initializes the store at dir, creating the directory tree
// and the master key on first use. The master key file is created with
// 0600 permissions; anyone who can read it can unseal every dataset key,
// so the data directory must be trusted storage (f2served is the
// owner-side service — the paper's untrusted server never runs it).
func OpenOptions(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty data directory")
	}
	if opts.ChunkRows < 0 {
		return nil, fmt.Errorf("store: negative chunk rows %d", opts.ChunkRows)
	}
	chunkRows := opts.ChunkRows
	if chunkRows == 0 {
		chunkRows = defaultChunkRows
	}
	if err := os.MkdirAll(filepath.Join(dir, datasetsDir), 0o700); err != nil {
		return nil, fmt.Errorf("store: creating data directory: %w", err)
	}
	master, err := loadOrCreateMasterKey(filepath.Join(dir, masterKeyFile))
	if err != nil {
		return nil, err
	}
	cipher, err := crypt.NewProbCipher(master, crypt.PRFAESCTR)
	if err != nil {
		return nil, fmt.Errorf("store: master cipher: %w", err)
	}
	return &Store{
		dir:       dir,
		master:    cipher,
		chunkRows: chunkRows,
		wals:      make(map[string]*walWriter),
		rots:      make(map[string]*sync.RWMutex),
		gcDebt:    make(map[string]string),
	}, nil
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// Close drains every dataset's committer (staged groups are written and
// fsynced first) and releases the WAL handles. Snapshots and acknowledged
// batches are already durable; Close loses nothing.
func (s *Store) Close() error {
	s.mu.Lock()
	writers := s.wals
	s.wals = make(map[string]*walWriter)
	s.mu.Unlock()
	var firstErr error
	for _, w := range writers {
		if err := w.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// WALStats reports the group-commit counters: total WAL fsyncs issued and
// total batches those fsyncs covered. batches/fsyncs is the mean group
// size — 1.0 under serial load, climbing with append concurrency.
func (s *Store) WALStats() (fsyncs, batches uint64) {
	return s.stats.fsyncs.Load(), s.stats.batches.Load()
}

func loadOrCreateMasterKey(path string) (crypt.Key, error) {
	var key crypt.Key
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := key.UnmarshalText(bytes.TrimSpace(data)); err != nil {
			return crypt.Key{}, fmt.Errorf("store: master key file %s: %w", path, err)
		}
		return key, nil
	case errors.Is(err, os.ErrNotExist):
		key, err = crypt.GenerateKey()
		if err != nil {
			return crypt.Key{}, fmt.Errorf("store: %w", err)
		}
		text, err := key.MarshalText()
		if err != nil {
			return crypt.Key{}, fmt.Errorf("store: %w", err)
		}
		if err := writeFileAtomic(path, append(text, '\n'), 0o600); err != nil {
			return crypt.Key{}, fmt.Errorf("store: writing master key: %w", err)
		}
		return key, nil
	default:
		return crypt.Key{}, fmt.Errorf("store: reading master key: %w", err)
	}
}

func (s *Store) datasetDir(id string) string {
	return filepath.Join(s.dir, datasetsDir, id)
}

// SaveSnapshot durably records rec as a v2 chunked snapshot: section
// chunks are written (or re-linked when their content already exists)
// first, the index blob rotates atomically after they are durable, the
// GC sweeps chunks the new index dropped, and on success the WAL is
// truncated (every journaled batch at or below rec.WALSeq is now covered
// by the snapshot; replay skips them even if truncation itself is lost
// to a crash). The context only carries the caller's trace; the write
// itself is never cancelled mid-rotation. The dataset's rotation lock is
// held exclusively across chunks + index + GC, so concurrent hydration
// sees either the old snapshot or the new one, never a half-swept mix.
func (s *Store) SaveSnapshot(ctx context.Context, rec *Record) error {
	if rec.ID == "" {
		return errors.New("store: record has no id")
	}
	sctx, sp := obs.Start(ctx, "snapshot.save")
	defer sp.End()
	_, seal := obs.Start(sctx, "snapshot.seal")
	keyEnc, err := sealKey(s.master, rec.Config.Key)
	seal.End()
	if err != nil {
		return err
	}
	sec := rec.Updater.Sections()
	if sec == nil {
		return errors.New("store: record has no updater state")
	}
	rl := s.rot(rec.ID)
	rl.Lock()
	err = s.rotateSnapshot(sctx, rec, keyEnc, sec)
	rl.Unlock()
	if err != nil {
		return err
	}
	_, tr := obs.Start(sctx, "snapshot.compact-wal")
	err = s.compactWAL(rec.ID, rec.WALSeq)
	tr.End()
	return err
}

// WALAck is a staged batch's handle on its group commit.
type WALAck struct {
	entry *walEntry
}

// Wait blocks until the batch's group fsync completes and returns its
// outcome. The wait is deliberately not cancellable: the committer syncs
// every staged batch, so the bound is one group fsync away, and
// abandoning the wait would leave the caller unable to tell whether its
// batch became durable. The context only carries the caller's trace —
// Wait records the wal.append and wal.fsync spans into it, the latter
// tagged with the number of batches the shared fsync covered.
func (a *WALAck) Wait(ctx context.Context) error {
	res := <-a.entry.done
	a.entry.done <- res // allow a second Wait (e.g. retry paths) to observe the result
	obs.Record(ctx, "wal.append", time.Since(a.entry.staged),
		"seq", a.entry.seq, "rows", a.entry.rows, "bytes", len(a.entry.rec))
	if res.grouped > 0 {
		obs.Record(ctx, "wal.fsync", res.fsyncDur, "batched", res.grouped)
	}
	return res.err
}

// StageAppend frames one append batch and stages it for group commit,
// returning an ack the caller must Wait on before acknowledging its
// client. Framing errors (oversized record) and writer-open errors
// surface synchronously, before anything is staged. commit, if non-nil,
// runs exactly once on the committer goroutine after the batch's group
// fsync succeeds and before any waiter of that group is released; commits
// run in staging order, so per-dataset staging order is apply order.
func (s *Store) StageAppend(id string, b Batch, commit func()) (*WALAck, error) {
	rec, err := frameWALRecord(b)
	if err != nil {
		return nil, err
	}
	w, err := s.walFor(id)
	if err != nil {
		return nil, err
	}
	e := &walEntry{
		rec:    rec,
		seq:    b.Seq,
		rows:   len(b.Rows),
		staged: time.Now(),
		commit: commit,
		done:   make(chan walResult, 1),
	}
	if err := w.stage(walOp{entry: e}); err != nil {
		return nil, err
	}
	return &WALAck{entry: e}, nil
}

// AppendBatch journals one append batch and waits for its group fsync.
// It must be called — and must succeed — before the append is
// acknowledged to the client; a batch that fails to journal must be
// rejected, not buffered. The context only carries the caller's trace.
func (s *Store) AppendBatch(ctx context.Context, id string, b Batch) error {
	ack, err := s.StageAppend(id, b, nil)
	if err != nil {
		return err
	}
	return ack.Wait(ctx)
}

// walFor returns the dataset's group-commit writer, starting one on first
// use. The writer is created outside s.mu — opening and dir-syncing are
// syscalls — with a double-checked insert to resolve races.
func (s *Store) walFor(id string) (*walWriter, error) {
	s.mu.Lock()
	w, ok := s.wals[id]
	s.mu.Unlock()
	if ok {
		return w, nil
	}
	fresh, err := newWALWriter(s.datasetDir(id), &s.stats)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if existing, ok := s.wals[id]; ok {
		s.mu.Unlock()
		_ = fresh.close() // lost the race; ours has nothing staged
		return existing, nil
	}
	s.wals[id] = fresh
	s.mu.Unlock()
	return fresh, nil
}

// compactWAL rewrites the journal keeping only batches above the snapshot
// watermark keep — batches journaled concurrently with the snapshot
// survive. Failure is non-fatal to durability — replay skips covered
// batches by sequence — so the error only signals the space leak.
func (s *Store) compactWAL(id string, keep uint64) error {
	s.mu.Lock()
	w := s.wals[id]
	s.mu.Unlock()
	if w == nil {
		// No writer and no journal file means nothing to compact; skip
		// rather than spin up a committer just to find an empty queue.
		// (A fresh dataset's first snapshot lands here.) If a racing
		// append starts the writer right after this check, its batches
		// carry sequences above keep and would survive compaction anyway.
		if _, err := os.Stat(filepath.Join(s.datasetDir(id), walName)); errors.Is(err, os.ErrNotExist) {
			return nil
		}
		var err error
		if w, err = s.walFor(id); err != nil {
			return err
		}
	}
	return w.compact(keep)
}

// Delete removes every trace of a dataset: its committer, snapshot, and
// directory.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	w := s.wals[id]
	delete(s.wals, id)
	s.mu.Unlock()
	if w != nil {
		// Drains staged groups first; the directory (and any bytes they
		// wrote) is removed next anyway.
		_ = w.close()
	}
	// Exclusive rotation lock: an in-flight hydration finishes its chunk
	// reads before the directory goes away.
	rl := s.rot(id)
	rl.Lock()
	err := s.removeDataset(id)
	rl.Unlock()
	s.rotMu.Lock()
	delete(s.rots, id)
	s.rotMu.Unlock()
	// A deleted dataset's leaked chunks went with its directory; its
	// sweep debt is settled.
	s.noteGCDebt(id, nil)
	return err
}

func (s *Store) removeDataset(id string) error {
	if err := os.RemoveAll(s.datasetDir(id)); err != nil {
		return fmt.Errorf("store: deleting dataset %s: %w", id, err)
	}
	return syncDir(filepath.Join(s.dir, datasetsDir))
}

// LoadAll recovers every dataset in the store: each snapshot is decoded,
// its key unsealed, and its WAL tail — acknowledged batches newer than
// the snapshot — attached for replay. Dataset directories without a
// snapshot (a crash before the first snapshot completed) are skipped and
// reported in skipped.
func (s *Store) LoadAll() (loaded []*Loaded, skipped []string, err error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, datasetsDir))
	if err != nil {
		return nil, nil, fmt.Errorf("store: listing datasets: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		l, err := s.loadOne(id)
		if err != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %v", id, err))
			continue
		}
		loaded = append(loaded, l)
	}
	return loaded, skipped, nil
}

func (s *Store) loadOne(id string) (*Loaded, error) {
	dir := s.datasetDir(id)
	data, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		return nil, fmt.Errorf("reading snapshot: %w", err)
	}
	ver, err := snapshotVersionOf(data)
	if err != nil {
		return nil, err
	}
	switch ver {
	case snapshotVersionV1:
		return s.loadLegacy(id, dir, data)
	case indexVersion:
		return s.loadIndexed(id, dir, data)
	default:
		return nil, fmt.Errorf("store: snapshot version %d, want %d or %d", ver, snapshotVersionV1, indexVersion)
	}
}

// loadLegacy reads a v1 monolithic snapshot eagerly: the full updater
// state is inline, so there is nothing to defer. The Legacy flag tells
// the caller the next save will upgrade the dataset to the chunked
// format.
func (s *Store) loadLegacy(id, dir string, data []byte) (*Loaded, error) {
	snap, err := unmarshalSnapshot(data)
	if err != nil {
		return nil, err
	}
	if snap.ID != id {
		return nil, fmt.Errorf("snapshot id %q does not match directory %q", snap.ID, id)
	}
	key, err := openKey(s.master, snap.KeyEnc)
	if err != nil {
		return nil, err
	}
	tail, err := s.walTail(dir, snap.WALSeq)
	if err != nil {
		return nil, err
	}
	return &Loaded{
		Record: Record{
			ID:      snap.ID,
			Name:    snap.Name,
			Created: snap.Created,
			Config:  snap.Config.config(key),
			Updater: snap.Updater,
			WALSeq:  snap.WALSeq,
		},
		Tail:   tail,
		Legacy: true,
	}, nil
}

// loadIndexed reads a v2 index blob only: identity, config, watermark,
// and the index-level stats. The chunked state stays on disk until
// LoadState is called.
func (s *Store) loadIndexed(id, dir string, data []byte) (*Loaded, error) {
	idx, err := parseIndex(data)
	if err != nil {
		return nil, err
	}
	if idx.ID != id {
		return nil, fmt.Errorf("snapshot id %q does not match directory %q", idx.ID, id)
	}
	key, err := openKey(s.master, idx.KeyEnc)
	if err != nil {
		return nil, err
	}
	tail, err := s.walTail(dir, idx.WALSeq)
	if err != nil {
		return nil, err
	}
	return &Loaded{
		Record: Record{
			ID:      idx.ID,
			Name:    idx.Name,
			Created: idx.Created,
			Config:  idx.Config.config(key),
			WALSeq:  idx.WALSeq,
		},
		Tail: tail,
		Lazy: true,
		Stats: &DatasetStats{
			Rows:          idx.Current.Rows,
			PendingRows:   idx.Buffer.Rows,
			EncryptedRows: idx.Encrypted.Rows,
			Meta:          *idx.Meta,
		},
	}, nil
}

// walTail returns the acknowledged batches past the snapshot watermark,
// tolerating a WAL that survived a snapshot whose truncation was lost.
func (s *Store) walTail(dir string, walSeq uint64) ([]Batch, error) {
	batches, err := readWAL(filepath.Join(dir, walName))
	if err != nil {
		return nil, err
	}
	tail := batches[:0]
	for _, b := range batches {
		if b.Seq > walSeq {
			tail = append(tail, b)
		}
	}
	return tail, nil
}
