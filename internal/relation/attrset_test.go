package relation

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestAttrSetBasics(t *testing.T) {
	s := NewAttrSet(0, 2, 5)
	if s.Size() != 3 {
		t.Fatalf("Size = %d, want 3", s.Size())
	}
	for _, a := range []int{0, 2, 5} {
		if !s.Has(a) {
			t.Errorf("Has(%d) = false, want true", a)
		}
	}
	for _, a := range []int{1, 3, 4, 6} {
		if s.Has(a) {
			t.Errorf("Has(%d) = true, want false", a)
		}
	}
	if got := s.Attrs(); !reflect.DeepEqual(got, []int{0, 2, 5}) {
		t.Errorf("Attrs = %v, want [0 2 5]", got)
	}
	if s.Remove(2).Has(2) {
		t.Error("Remove(2) still has 2")
	}
	if s.Remove(3) != s {
		t.Error("Remove of absent element changed set")
	}
}

func TestAttrSetAlgebra(t *testing.T) {
	a := NewAttrSet(0, 1, 2)
	b := NewAttrSet(1, 2, 3)
	if got := a.Union(b); got != NewAttrSet(0, 1, 2, 3) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != NewAttrSet(1, 2) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b); got != NewAttrSet(0) {
		t.Errorf("Diff = %v", got)
	}
	if !NewAttrSet(1).SubsetOf(a) || a.SubsetOf(b) {
		t.Error("SubsetOf wrong")
	}
	if !NewAttrSet(1).ProperSubsetOf(a) || a.ProperSubsetOf(a) {
		t.Error("ProperSubsetOf wrong")
	}
	if !a.Overlaps(b) || a.Overlaps(NewAttrSet(4, 5)) {
		t.Error("Overlaps wrong")
	}
}

func TestFullAttrSet(t *testing.T) {
	if FullAttrSet(3) != NewAttrSet(0, 1, 2) {
		t.Errorf("FullAttrSet(3) = %v", FullAttrSet(3))
	}
	if FullAttrSet(0) != 0 {
		t.Errorf("FullAttrSet(0) = %v", FullAttrSet(0))
	}
	if FullAttrSet(64) != ^AttrSet(0) {
		t.Errorf("FullAttrSet(64) = %v", FullAttrSet(64))
	}
}

func TestImmediateSubsetsSupersets(t *testing.T) {
	s := NewAttrSet(1, 3)
	subs := s.ImmediateSubsets()
	if len(subs) != 2 {
		t.Fatalf("ImmediateSubsets len = %d", len(subs))
	}
	for _, sub := range subs {
		if sub.Size() != 1 || !sub.SubsetOf(s) {
			t.Errorf("bad immediate subset %v", sub)
		}
	}
	sups := s.ImmediateSupersets(5)
	if len(sups) != 3 {
		t.Fatalf("ImmediateSupersets len = %d", len(sups))
	}
	for _, sup := range sups {
		if sup.Size() != 3 || !s.SubsetOf(sup) {
			t.Errorf("bad immediate superset %v", sup)
		}
	}
}

func TestSubsetsEnumeration(t *testing.T) {
	s := NewAttrSet(0, 2, 4)
	var got []AttrSet
	s.Subsets(func(sub AttrSet) bool {
		got = append(got, sub)
		return true
	})
	// 2^3 - 2 proper non-empty subsets.
	if len(got) != 6 {
		t.Fatalf("Subsets yielded %d sets, want 6", len(got))
	}
	for _, sub := range got {
		if !sub.ProperSubsetOf(s) || sub.IsEmpty() {
			t.Errorf("bad subset %v", sub)
		}
	}
	// Early stop.
	count := 0
	s.Subsets(func(AttrSet) bool { count++; return count < 2 })
	if count != 2 {
		t.Errorf("early stop count = %d, want 2", count)
	}
}

func TestAttrSetString(t *testing.T) {
	if got := NewAttrSet(0, 12).String(); got != "{A0,A12}" {
		t.Errorf("String = %q", got)
	}
	if got := AttrSet(0).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
	sch := MustSchema("x", "y", "z")
	if got := NewAttrSet(0, 2).Names(sch); got != "{x,z}" {
		t.Errorf("Names = %q", got)
	}
}

// Property: set algebra laws hold for arbitrary masks.
func TestAttrSetQuickProperties(t *testing.T) {
	deMorgan := func(a, b uint64) bool {
		x, y := AttrSet(a), AttrSet(b)
		full := ^AttrSet(0)
		left := full.Diff(x.Union(y))
		right := full.Diff(x).Intersect(full.Diff(y))
		return left == right
	}
	if err := quick.Check(deMorgan, nil); err != nil {
		t.Error(err)
	}
	unionSize := func(a, b uint64) bool {
		x, y := AttrSet(a), AttrSet(b)
		return x.Union(y).Size() == x.Size()+y.Size()-x.Intersect(y).Size()
	}
	if err := quick.Check(unionSize, nil); err != nil {
		t.Error(err)
	}
	attrsRoundTrip := func(a uint64) bool {
		x := AttrSet(a)
		return NewAttrSet(x.Attrs()...) == x
	}
	if err := quick.Check(attrsRoundTrip, nil); err != nil {
		t.Error(err)
	}
	subsetMeansDiffEmpty := func(a, b uint64) bool {
		x, y := AttrSet(a), AttrSet(b)
		return x.SubsetOf(y) == x.Diff(y).IsEmpty()
	}
	if err := quick.Check(subsetMeansDiffEmpty, nil); err != nil {
		t.Error(err)
	}
}

func TestSortAttrSets(t *testing.T) {
	sets := []AttrSet{NewAttrSet(0, 1, 2), NewAttrSet(3), NewAttrSet(0, 5), NewAttrSet(1)}
	SortAttrSets(sets)
	for i := 1; i < len(sets); i++ {
		if sets[i-1].Size() > sets[i].Size() {
			t.Fatalf("not sorted by size: %v", sets)
		}
		if sets[i-1].Size() == sets[i].Size() && sets[i-1] > sets[i] {
			t.Fatalf("ties not sorted by value: %v", sets)
		}
	}
}
