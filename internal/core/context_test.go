package core

import (
	"context"
	"errors"
	"testing"

	"f2/internal/workload"
)

// TestEncryptCancelledContext checks that a cancelled context aborts the
// pipeline with ctx.Err() instead of producing a result.
func TestEncryptCancelledContext(t *testing.T) {
	tbl, err := workload.Generate(workload.NameOrders, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncryptor(testConfig(0.25))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := enc.Encrypt(ctx, tbl)
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Encrypt with cancelled ctx = (%v, %v), want (nil, context.Canceled)", res, err)
	}
}

// TestUpdaterFlushCancelledKeepsBuffer checks that a cancelled rebuild
// leaves the updater consistent: the buffered rows stay pending and a
// later Flush with a live context commits them.
func TestUpdaterFlushCancelledKeepsBuffer(t *testing.T) {
	u, _, err := NewUpdater(context.Background(), testConfig(0.5), figure1Table())
	if err != nil {
		t.Fatal(err)
	}
	rowsBefore := u.Rows()
	if err := u.buffer.AppendRows([][]string{{"x1", "y1", "z1"}}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := u.Flush(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Flush with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if u.Pending() != 1 || u.Rows() != rowsBefore {
		t.Fatalf("after cancelled flush: pending=%d rows=%d, want pending=1 rows=%d",
			u.Pending(), u.Rows(), rowsBefore)
	}
	res, err := u.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || u.Pending() != 0 || u.Rows() != rowsBefore+1 {
		t.Fatalf("retry flush: res=%v pending=%d rows=%d", res, u.Pending(), u.Rows())
	}
}
