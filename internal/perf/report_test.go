package perf

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleReport(name string) *Report {
	r := NewReport(name, QuickScale())
	r.Runs = []RunResult{
		{
			Workload: "encrypt/full", Concurrency: 1, Ops: 40,
			ElapsedMs: 1500, P50Ms: 30.5, P95Ms: 38.2, P99Ms: 39.9,
			MinMs: 28.0, MeanMs: 31.0, MaxMs: 41.2,
			OpsPerSec: 26.7, RowsPerSec: 53400,
			Metrics:  map[string]float64{"ciphertextExpansion": 1.262},
			Profiles: []ProfileRef{{Kind: "cpu", File: "profiles/encrypt-full.cpu.pprof"}},
			Runtime:  &RuntimeSummary{Samples: 15, MaxHeapMB: 120.5, MaxGoroutines: 9, AllocMB: 900, GCCycles: 12},
		},
		{
			Workload: "server/read", Concurrency: 4, Ops: 10000, Errors: 2,
			ElapsedMs: 1500, P50Ms: 0.12, P95Ms: 0.24, P99Ms: 1.1,
			MinMs: 0.05, MeanMs: 0.15, MaxMs: 4.0, OpsPerSec: 6666,
		},
	}
	return r
}

// TestReportRoundTrip: what Write persists, ReadReport restores exactly.
func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	orig := sampleReport("roundtrip")
	path, err := orig.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_roundtrip.json"); path != want {
		t.Errorf("path = %q, want canonical %q", path, want)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Errorf("round-trip mismatch:\nwrote %+v\nread  %+v", orig, got)
	}
}

// TestReportVersionGate: a report from an incompatible harness fails
// loudly instead of diffing garbage.
func TestReportVersionGate(t *testing.T) {
	dir := t.TempDir()
	r := sampleReport("ver")
	r.Version = ReportVersion + 1
	path, err := r.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v, want version mismatch", err)
	}
}

func TestReportReadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Fatal("garbage report parsed without error")
	}
}

func TestReportRunLookup(t *testing.T) {
	r := sampleReport("lookup")
	if _, ok := r.Run("encrypt/full"); !ok {
		t.Error("Run failed to find an existing workload")
	}
	if _, ok := r.Run("nope"); ok {
		t.Error("Run found a nonexistent workload")
	}
}
