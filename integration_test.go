package f2_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"f2/internal/relation"
	"f2/internal/workload"
)

// TestCLIRoundTrip exercises the shipped binaries end to end:
// f2gen → f2encrypt → fddiscover (on ciphertext) → f2decrypt, checking
// that the recovered CSV equals the generated one and that the discovered
// rule count matches plaintext discovery.
func TestCLIRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	dir := t.TempDir()
	run := func(args ...string) string {
		t.Helper()
		cmd := exec.Command("go", append([]string{"run"}, args...)...)
		cmd.Dir = "."
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("go run %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	plainCSV := filepath.Join(dir, "plain.csv")
	encCSV := filepath.Join(dir, "enc.csv")
	keyFile := filepath.Join(dir, "key.hex")
	provFile := filepath.Join(dir, "prov.json")
	outCSV := filepath.Join(dir, "recovered.csv")

	// 1. Generate a small synthetic dataset.
	out := run("./cmd/f2gen", "-dataset", "synthetic", "-rows", "2000", "-seed", "3", "-out", plainCSV)
	if !strings.Contains(out, "2000 rows") {
		t.Fatalf("f2gen output: %s", out)
	}

	// 2. Encrypt with provenance.
	out = run("./cmd/f2encrypt", "-in", plainCSV, "-out", encCSV,
		"-keyout", keyFile, "-prov", provFile, "-alpha", "0.25")
	if !strings.Contains(out, "F² report") {
		t.Fatalf("f2encrypt output: %s", out)
	}
	if fi, err := os.Stat(keyFile); err != nil || fi.Size() == 0 {
		t.Fatalf("key file missing: %v", err)
	}

	// 3. Server-side discovery runs on the ciphertext CSV.
	out = run("./cmd/fddiscover", "-in", encCSV, "-witnessed")
	if !strings.Contains(out, "minimal FDs") {
		t.Fatalf("fddiscover output: %s", out)
	}
	cipherHeader := strings.SplitN(out, "\n", 2)[0]

	plainOut := run("./cmd/fddiscover", "-in", plainCSV, "-witnessed")
	plainHeader := strings.SplitN(plainOut, "\n", 2)[0]
	// "N minimal FDs (...)" — the counts must agree.
	cipherCount := strings.Fields(cipherHeader)[0]
	plainCount := strings.Fields(plainHeader)[0]
	if cipherCount != plainCount {
		t.Fatalf("FD counts differ: ciphertext %s vs plaintext %s", cipherCount, plainCount)
	}

	// 4. MAS discovery works on ciphertext too.
	out = run("./cmd/fddiscover", "-in", encCSV, "-mas")
	if !strings.Contains(out, "maximal attribute sets") {
		t.Fatalf("fddiscover -mas output: %s", out)
	}

	// 5. Decrypt with provenance: exact recovery.
	out = run("./cmd/f2decrypt", "-in", encCSV, "-out", outCSV, "-key", keyFile, "-prov", provFile)
	if !strings.Contains(out, "recovered 2000 rows") {
		t.Fatalf("f2decrypt output: %s", out)
	}
	want, err := relation.ReadCSVFile(plainCSV)
	if err != nil {
		t.Fatal(err)
	}
	got, err := relation.ReadCSVFile(outCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.SortedRows(), want.SortedRows()) {
		t.Fatal("recovered CSV differs from the original")
	}
}

// TestF2BenchQuickSmoke runs one harness experiment through the CLI.
func TestF2BenchQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	cmd := exec.Command("go", "run", "./cmd/f2bench", "-quick", "-exp", "table1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("f2bench: %v\n%s", err, out)
	}
	for _, want := range append([]string{"table1"}, workload.Names()...) {
		if !strings.Contains(string(out), want) {
			t.Fatalf("f2bench output missing %q:\n%s", want, out)
		}
	}
}

// TestExamplesRun smoke-runs every example binary; each validates its own
// claims internally (FD preservation, attack bounds, recovery) and exits
// non-zero on failure.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	for _, example := range []string{"quickstart", "datacleaning", "schemarefine", "attacksim"} {
		example := example
		t.Run(example, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+example)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", example, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", example)
			}
		})
	}
}
