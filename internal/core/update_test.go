package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"f2/internal/fd"
	"f2/internal/relation"
)

func TestUpdaterAppendAndFlush(t *testing.T) {
	tbl := figure1Table()
	cfg := testConfig(0.5)
	u, res, err := NewUpdater(context.Background(), cfg, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || u.Rebuilds != 1 {
		t.Fatalf("initial state: res=%v rebuilds=%d", res != nil, u.Rebuilds)
	}

	// Small append stays buffered (10% of 4 rows < 1 row... threshold
	// 0.4, so one row triggers; raise the fraction to test buffering).
	u.FlushFraction = 2.0
	if res, err := u.Append(context.Background(), [][]string{{"a2", "b2", "c9"}}); err != nil || res != nil {
		t.Fatalf("append flushed unexpectedly: %v, %v", res, err)
	}
	if u.Pending() != 1 || u.Rows() != 4 {
		t.Fatalf("pending=%d rows=%d", u.Pending(), u.Rows())
	}

	// Explicit flush covers the appended row; the default strategy serves
	// this append (no border change) incrementally.
	res2, err := u.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if u.Pending() != 0 || u.Rows() != 5 {
		t.Fatalf("after flush: pending=%d rows=%d", u.Pending(), u.Rows())
	}
	if u.Rebuilds != 1 || u.IncrementalFlushes != 1 || u.LastFlush != FlushModeIncremental {
		t.Fatalf("flush path: rebuilds=%d incr=%d last=%q", u.Rebuilds, u.IncrementalFlushes, u.LastFlush)
	}
	if res2.Report.OriginalRows != 5 {
		t.Fatalf("rebuilt over %d rows, want 5", res2.Report.OriginalRows)
	}

	// The rebuilt ciphertext still preserves FDs and decrypts exactly.
	want := fd.DiscoverWitnessed(u.current)
	got := fd.DiscoverWitnessed(res2.Encrypted)
	if !want.Equal(got) {
		t.Fatalf("FDs differ after update: %v vs %v", want, got)
	}
	dec, err := NewDecryptor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := dec.Recover(context.Background(), res2)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 5 || back.Cell(4, 2) != "c9" {
		t.Fatalf("recovered table wrong: %d rows, last C=%q", back.NumRows(), back.Cell(4, 2))
	}

	// The same append under the forced-rebuild strategy takes the rebuild
	// path and agrees on the witnessed FDs.
	u2, _, err := NewUpdater(context.Background(), cfg, figure1Table())
	if err != nil {
		t.Fatal(err)
	}
	u2.Strategy = UpdateRebuild
	if err := u2.Buffer([][]string{{"a2", "b2", "c9"}}); err != nil {
		t.Fatal(err)
	}
	res3, err := u2.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if u2.Rebuilds != 2 || u2.LastFlush != FlushModeRebuild {
		t.Fatalf("rebuild path: rebuilds=%d last=%q", u2.Rebuilds, u2.LastFlush)
	}
	if !fd.DiscoverWitnessed(res3.Encrypted).Equal(got) {
		t.Fatal("rebuild and incremental flushes disagree on witnessed FDs")
	}
}

// TestShouldFlushFloorOnEmptyTable is the regression for the degenerate
// ShouldFlush behavior: over an initially empty table the old threshold
// FlushFraction·0 = 0 was crossed by any single buffered row, forcing a
// full rebuild per append. The MinFlushRows floor keeps the buffer
// accumulating.
func TestShouldFlushFloorOnEmptyTable(t *testing.T) {
	empty := relation.NewTable(relation.MustSchema("A", "B", "C"))
	u, _, err := NewUpdater(context.Background(), testConfig(0.5), empty)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Buffer([][]string{{"a1", "b1", "c1"}}); err != nil {
		t.Fatal(err)
	}
	if u.ShouldFlush() {
		t.Fatal("single buffered row over an empty table forced a flush")
	}
	if err := u.Buffer([][]string{{"a2", "b2", "c2"}}); err != nil {
		t.Fatal(err)
	}
	if !u.ShouldFlush() {
		t.Fatalf("buffer of %d rows (= default floor) should flush", u.Pending())
	}
	if _, err := u.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if u.Rows() != 2 || u.Pending() != 0 {
		t.Fatalf("after flush: rows=%d pending=%d", u.Rows(), u.Pending())
	}

	// A raised floor is honored over a non-empty table too.
	u.MinFlushRows = 5
	u.FlushFraction = 0.1
	for i := 0; i < 4; i++ {
		if err := u.Buffer([][]string{{"x", "y", string(rune('0' + i))}}); err != nil {
			t.Fatal(err)
		}
	}
	if u.ShouldFlush() {
		t.Fatalf("%d buffered rows under floor 5 should not flush", u.Pending())
	}
	if err := u.Buffer([][]string{{"x", "y", "zz"}}); err != nil {
		t.Fatal(err)
	}
	if !u.ShouldFlush() {
		t.Fatal("floor reached but ShouldFlush is false")
	}
}

func TestUpdaterAutoFlushThreshold(t *testing.T) {
	tbl := figure1Table() // 4 rows
	u, _, err := NewUpdater(context.Background(), testConfig(0.5), tbl)
	if err != nil {
		t.Fatal(err)
	}
	u.FlushFraction = 0.5 // flush at ≥ 2 buffered rows
	if res, err := u.Append(context.Background(), [][]string{{"a5", "b5", "c5"}}); err != nil || res != nil {
		t.Fatalf("first append should buffer: %v %v", res, err)
	}
	res, err := u.Append(context.Background(), [][]string{{"a6", "b6", "c6"}})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("second append should trigger the rebuild")
	}
	if u.Rows() != 6 || u.Pending() != 0 {
		t.Fatalf("rows=%d pending=%d", u.Rows(), u.Pending())
	}
}

func TestUpdaterFlushEmptyIsNoop(t *testing.T) {
	u, res, err := NewUpdater(context.Background(), testConfig(0.5), figure1Table())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := u.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res || u.Rebuilds != 1 {
		t.Fatal("empty flush rebuilt")
	}
}

// TestFlushPlanMatchesSynchronousFlush drives the copy-on-write plan API
// directly — with an append landing in the fresh buffer generation while
// the plan is in flight — and checks it commits the exact ciphertext the
// synchronous Flush produces over the same rows.
func TestFlushPlanMatchesSynchronousFlush(t *testing.T) {
	ctx := context.Background()
	delta := [][]string{{"a2", "b2", "c9"}, {"a5", "b5", "c5"}}
	mk := func() *Updater {
		u, _, err := NewUpdater(ctx, testConfig(0.5), figure1Table())
		if err != nil {
			t.Fatal(err)
		}
		if err := u.Buffer(delta); err != nil {
			t.Fatal(err)
		}
		return u
	}

	uSync := mk()
	resSync, err := uSync.Flush(ctx)
	if err != nil {
		t.Fatal(err)
	}

	uPlan := mk()
	plan, err := uPlan.BeginFlush()
	if err != nil || plan == nil {
		t.Fatalf("BeginFlush: plan=%v err=%v", plan, err)
	}
	if plan.Pending() != len(delta) {
		t.Fatalf("plan pending=%d, want %d", plan.Pending(), len(delta))
	}
	// The delta moved into the plan; new appends buffer into the fresh
	// generation and a second flush cannot start.
	if err := uPlan.Buffer([][]string{{"a9", "b9", "c1"}}); err != nil {
		t.Fatal(err)
	}
	if uPlan.Pending() != 1 {
		t.Fatalf("fresh generation pending=%d, want 1", uPlan.Pending())
	}
	if _, err := uPlan.BeginFlush(); !errors.Is(err, ErrFlushInFlight) {
		t.Fatalf("second BeginFlush: %v, want ErrFlushInFlight", err)
	}
	if err := plan.Run(ctx); err != nil {
		t.Fatal(err)
	}
	resPlan, err := uPlan.CompleteFlush(plan)
	if err != nil {
		t.Fatal(err)
	}

	if uSync.LastFlush != uPlan.LastFlush {
		t.Fatalf("modes differ: sync=%q plan=%q", uSync.LastFlush, uPlan.LastFlush)
	}
	if !reflect.DeepEqual(tableRows(resSync.Encrypted), tableRows(resPlan.Encrypted)) {
		t.Fatal("plan flush and synchronous flush disagree on ciphertext")
	}
	if uPlan.Rows() != 6 || uPlan.Pending() != 1 {
		t.Fatalf("after complete: rows=%d pending=%d", uPlan.Rows(), uPlan.Pending())
	}
}

// TestAbortFlushRestoresPendingOrder checks the failure path: an aborted
// plan returns its delta to the front of the buffer, ahead of rows
// appended while it was in flight, and a retry flushes everything.
func TestAbortFlushRestoresPendingOrder(t *testing.T) {
	ctx := context.Background()
	u, _, err := NewUpdater(ctx, testConfig(0.5), figure1Table())
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Buffer([][]string{{"a2", "b2", "c8"}, {"a5", "b5", "c5"}}); err != nil {
		t.Fatal(err)
	}
	plan, err := u.BeginFlush()
	if err != nil || plan == nil {
		t.Fatalf("BeginFlush: plan=%v err=%v", plan, err)
	}
	if err := u.Buffer([][]string{{"a9", "b9", "c1"}}); err != nil {
		t.Fatal(err)
	}
	u.AbortFlush(plan)
	if u.Pending() != 3 {
		t.Fatalf("pending=%d after abort, want 3", u.Pending())
	}
	want := [][]string{{"a2", "b2", "c8"}, {"a5", "b5", "c5"}, {"a9", "b9", "c1"}}
	if !reflect.DeepEqual(tableRows(u.buffer), want) {
		t.Fatalf("buffer order after abort: %v, want %v", tableRows(u.buffer), want)
	}
	if _, err := u.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if u.Rows() != 7 || u.Pending() != 0 {
		t.Fatalf("after retry flush: rows=%d pending=%d", u.Rows(), u.Pending())
	}
}

func tableRows(tbl *relation.Table) [][]string {
	out := make([][]string, 0, tbl.NumRows())
	for i := 0; i < tbl.NumRows(); i++ {
		out = append(out, tbl.Row(i))
	}
	return out
}

func TestUpdaterRejectsBadRows(t *testing.T) {
	u, _, err := NewUpdater(context.Background(), testConfig(0.5), figure1Table())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Append(context.Background(), [][]string{{"too", "short"}}); err == nil {
		t.Fatal("short row accepted")
	}
}
