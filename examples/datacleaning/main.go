// Data-cleaning-as-a-service (the paper's §1 motivation). The data owner
// has a clean reference table but no idea what its integrity rules are —
// discovering them is exactly the expensive task she wants to outsource
// (§5.4: TANE locally is orders of magnitude slower than encrypting).
//
// Flow:
//  1. the owner F²-encrypts the reference table and ships it;
//  2. the service provider runs FD discovery on ciphertexts only and
//     returns the dependency rules (attribute names are public schema
//     metadata; cell values never leave the owner in the clear);
//  3. the owner applies the discovered rules to a new, dirty batch
//     locally and pinpoints the corrupted tuples.
//
// F²'s guarantee makes step 2 sound: the witnessed FDs of the ciphertext
// are exactly those of the plaintext. Note what the server cannot do: it
// cannot tell which (encrypted) tuples are frequent, nor map any
// ciphertext back to a value — that is the α-security at work.
package main

import (
	"context"
	"fmt"
	"log"

	"f2/internal/core"
	"f2/internal/crypt"
	"f2/internal/fd"
	"f2/internal/relation"
	"f2/internal/workload"
)

func main() {
	// 1. Owner: encrypt the clean reference table and ship it.
	reference, err := workload.Generate(workload.NameCustomer, 3000, 7)
	if err != nil {
		log.Fatal(err)
	}
	sch := reference.Schema()

	key, err := crypt.GenerateKey()
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig(key)
	cfg.Alpha = 0.2
	enc, err := core.NewEncryptor(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := enc.Encrypt(context.Background(), reference)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owner ships %d encrypted rows (%.1f%% artificial)\n",
		res.Encrypted.NumRows(), 100*res.Report.Overhead())

	// 2. Server: discover dependency rules on ciphertexts only.
	serverRules := fd.DiscoverWitnessed(res.Encrypted)
	fmt.Printf("server discovers %d dependency rules from ciphertext\n", serverRules.Len())

	// Sanity check (the paper's Theorem 3.7): the server's rules are the
	// plaintext rules.
	ownerRules := fd.DiscoverWitnessed(reference)
	if !serverRules.Equal(ownerRules) {
		log.Fatal("rule sets differ — FD preservation broken")
	}

	// 3. Owner: validate a new dirty batch against the returned rules.
	// The batch shares the reference's value space (new customers in known
	// cities): sample reference rows into a fresh table.
	batch := relation.NewTable(sch.Clone())
	for i := 0; i < 500; i++ {
		batch.AppendRow(reference.Row(reference.NumRows() - 1 - i))
	}
	zipCol, cityCol := sch.Lookup("C_ZIP"), sch.Lookup("C_CITY")
	dirty := []int{42, 137, 444}
	for _, r := range dirty {
		// Corrupt the city while keeping the zip: violates C_ZIP→C_CITY.
		batch.SetCell(r, cityCol, "Mispeled City")
	}

	zipCity := fd.FD{LHS: relation.SingleAttr(zipCol), RHS: cityCol}
	if !ownerRules.Has(zipCity) {
		log.Fatalf("expected rule %s among discovered FDs", zipCity.Names(sch))
	}

	// Violation scan: group the combined (reference + batch) rows by zip
	// and flag batch rows whose city disagrees with the reference.
	cityOf := make(map[string]string, reference.NumRows())
	for i := 0; i < reference.NumRows(); i++ {
		cityOf[reference.Cell(i, zipCol)] = reference.Cell(i, cityCol)
	}
	var flagged []int
	for i := 0; i < batch.NumRows(); i++ {
		if want, ok := cityOf[batch.Cell(i, zipCol)]; ok && want != batch.Cell(i, cityCol) {
			flagged = append(flagged, i)
		}
	}
	fmt.Printf("owner validates a %d-row batch against rule %s: flagged rows %v\n",
		batch.NumRows(), zipCity.Names(sch), flagged)

	hit := 0
	for _, d := range dirty {
		for _, f := range flagged {
			if f == d {
				hit++
			}
		}
	}
	fmt.Printf("%d/%d planted dirty tuples identified\n", hit, len(dirty))
	if hit != len(dirty) {
		log.Fatal("data cleaning demo failed")
	}
}
