// Command f2perf drives the perf harness (internal/perf): it runs named
// workloads under the measuring runner, optionally captures pprof
// profiles and runtime samples, writes a machine-readable BENCH_<name>.json
// report, and diffs two reports as a CI perf gate.
//
// Measure:
//
//	f2perf -quick                         # smoke run, writes BENCH_quick.json
//	f2perf -run 'encrypt/*' -duration 5s  # one group, longer window
//	f2perf -run 'paper/*'                 # bridge to the paper experiments
//	f2perf -profile cpu,heap -out results # with profiler capture
//	f2perf -quick -profile-dir profs      # continuous profiler running alongside
//	f2perf -profiler-overhead -quick      # amortized-overhead gate for the above
//	f2perf -list                          # list workloads
//
// Compare (exits 1 when a latency quantile or throughput metric of any
// shared workload regressed by strictly more than -threshold percent):
//
//	f2perf -compare old.json new.json -threshold 10
//
// See docs/BENCHMARKING.md for the concepts and how to read reports.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"f2/internal/bench"
	"f2/internal/obs"
	"f2/internal/perf"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list workloads and exit")
		runGlob     = flag.String("run", "*", "workload glob ('*' crosses '/'; heavy paper/* workloads need an explicit glob)")
		quick       = flag.Bool("quick", false, "smoke run: quarter-scale datasets, short windows, report name 'quick'")
		name        = flag.String("name", "", "report name (BENCH_<name>.json; default 'full', or 'quick' with -quick)")
		out         = flag.String("out", ".", "output directory for the report and profiles")
		profileStr  = flag.String("profile", "", "comma-separated profiles to capture: cpu,heap,allocs")
		duration    = flag.Duration("duration", 0, "measured window per workload (default 4s, or 1500ms with -quick)")
		warmup      = flag.Int("warmup", 1, "warmup ops per workload (not measured)")
		maxOps      = flag.Int("max-ops", 0, "op-count bound per workload (0: duration-bound)")
		concurrency = flag.Int("concurrency", 0, "runner goroutines per workload (0: workload default)")
		scaleFactor = flag.Float64("scale", 0, "dataset size multiplier (0: 1.0, or 0.25 with -quick)")
		seed        = flag.Int64("seed", 1, "workload generator seed")
		parallelism = flag.Int("parallelism", 0, "pipeline width for width-unpinned workloads (0: GOMAXPROCS)")
		compare     = flag.Bool("compare", false, "compare two reports: f2perf -compare old.json new.json [-threshold N]")
		threshold   = flag.Float64("threshold", 10, "regression threshold in percent for -compare")
		stages      = flag.Bool("stages", true, "trace every measured op and record per-stage breakdowns in the report")
		traceOvh    = flag.Bool("trace-overhead", false, "measure tracing overhead (interleaved traced vs untraced encrypts) and gate on -overhead-budget")
		profOvh     = flag.Bool("profiler-overhead", false, "measure continuous-profiler overhead (interleaved profiled vs unprofiled encrypts, amortized by -profiler-duty) and gate on -overhead-budget")
		profDir     = flag.String("profile-dir", "", "run the continuous profiler (f2served's -profile-dir subsystem) for the whole suite, capturing CPU windows + heap profiles into this directory")
		profDuty    = flag.Float64("profiler-duty", 0, "duty cycle (cpu-window/interval fraction) to amortize -profiler-overhead by (0: profiler defaults, 5s/60s)")
		ovhBudget   = flag.Float64("overhead-budget", 2, "max acceptable overhead in percent for -trace-overhead / -profiler-overhead")
		ovhRounds   = flag.Int("overhead-rounds", 9, "A/B rounds for -trace-overhead / -profiler-overhead (odd; min 3)")
	)
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args(), *threshold))
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "f2perf: unexpected arguments %q (did you mean -compare?)\n", flag.Args())
		os.Exit(2)
	}

	reg := registry()
	if *list {
		for _, w := range reg.All() {
			heavy := ""
			if w.Heavy {
				heavy = " [heavy: needs explicit glob]"
			}
			fmt.Printf("%-28s %s%s\n", w.Name, w.Desc, heavy)
		}
		return
	}

	sc := perf.DefaultScale()
	reportName := "full"
	runFor := 4 * time.Second
	if *quick {
		sc = perf.QuickScale()
		reportName = "quick"
		runFor = 1500 * time.Millisecond
	}
	if *scaleFactor > 0 {
		sc.SizeFactor = *scaleFactor
	}
	sc.Seed = *seed
	sc.Parallelism = *parallelism
	if *name != "" {
		reportName = *name
	}
	if *duration > 0 {
		runFor = *duration
	}

	kinds, err := perf.ParseProfileKinds(*profileStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "f2perf: %v\n", err)
		os.Exit(2)
	}
	var prof *perf.ProfileConfig
	if len(kinds) > 0 {
		prof = &perf.ProfileConfig{
			Kinds:       kinds,
			Dir:         filepath.Join(*out, "profiles"),
			SampleEvery: 100 * time.Millisecond,
		}
	}

	selected := reg.Match(*runGlob)
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "f2perf: no workload matches %q; known: %v\n", *runGlob, reg.Names())
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *traceOvh {
		os.Exit(runTraceOverhead(ctx, sc, *ovhRounds, *ovhBudget))
	}
	if *profOvh {
		os.Exit(runProfilerOverhead(ctx, sc, *ovhRounds, *profDuty, *ovhBudget))
	}

	if *profDir != "" {
		// The same capture loop f2served runs behind -profile-dir, on a
		// cycle short enough that a quick suite still lands several CPU
		// windows and heap profiles. This is the capture smoke — proof the
		// profiler produces usable artifacts under benchmark load; the
		// overhead gate is -profiler-overhead, whose interleaved A/B rounds
		// are the only way a ≤2% budget is measurable.
		cp, err := obs.StartContinuousProfiler(obs.ProfilerConfig{
			Dir:       *profDir,
			Interval:  5 * time.Second,
			CPUWindow: 500 * time.Millisecond,
			OnError: func(err error) {
				// Contention over the CPU sampler (-profile cpu runs its own
				// windows) skips a window; worth a note, never fatal.
				fmt.Fprintf(os.Stderr, "f2perf: continuous profiler: %v\n", err)
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "f2perf: starting continuous profiler: %v\n", err)
			os.Exit(2)
		}
		defer cp.Stop()
	}

	report := perf.NewReport(reportName, sc)
	start := time.Now()
	for _, w := range selected {
		rc := perf.RunConfig{
			Concurrency: *concurrency,
			WarmupOps:   *warmup,
			Duration:    runFor,
			MaxOps:      *maxOps,
			Profile:     prof,
			Stages:      *stages,
		}
		res, err := perf.Run(ctx, w, sc, rc)
		if res != nil {
			report.Runs = append(report.Runs, *res)
			fmt.Println(res.Summary())
		}
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "f2perf: interrupted; writing partial report")
				break
			}
			fmt.Fprintf(os.Stderr, "f2perf: %v\n", err)
			os.Exit(1)
		}
	}
	path, err := report.Write(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "f2perf: writing report: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%d workloads in %v -> %s\n",
		len(report.Runs), time.Since(start).Round(time.Millisecond), path)
	if ctx.Err() != nil {
		os.Exit(1)
	}
}

// registry assembles the full workload set: the standard pipeline
// workloads plus the paper experiments bridged from internal/bench.
func registry() *perf.Registry {
	reg := perf.DefaultWorkloads()
	if err := reg.Register(bench.PerfWorkloads()...); err != nil {
		fmt.Fprintf(os.Stderr, "f2perf: registering paper experiments: %v\n", err)
		os.Exit(2)
	}
	return reg
}

// runTraceOverhead implements the tracing-overhead gate: interleaved
// traced/untraced encrypt rounds in one process, failing when the traced
// median exceeds the untraced one by more than the budget. Exit 0 = within
// budget, 1 = over budget, 2 = could not measure.
func runTraceOverhead(ctx context.Context, sc perf.Scale, rounds int, budgetPct float64) int {
	res, err := perf.TraceOverhead(ctx, sc, rounds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "f2perf: trace overhead: %v\n", err)
		return 2
	}
	fmt.Println(res)
	if !res.Within(budgetPct) {
		fmt.Fprintf(os.Stderr, "f2perf: tracing overhead %.2f%% exceeds the %.2f%% budget\n",
			res.OverheadPct, budgetPct)
		return 1
	}
	return 0
}

// runProfilerOverhead implements the continuous-profiler overhead gate:
// interleaved profiled/unprofiled encrypt rounds in one process, failing
// when the duty-cycle-amortized overhead exceeds the budget. Exit 0 =
// within budget, 1 = over budget, 2 = could not measure.
func runProfilerOverhead(ctx context.Context, sc perf.Scale, rounds int, duty, budgetPct float64) int {
	res, err := perf.ProfilerOverhead(ctx, sc, rounds, duty)
	if err != nil {
		fmt.Fprintf(os.Stderr, "f2perf: profiler overhead: %v\n", err)
		return 2
	}
	fmt.Println(res)
	if !res.Within(budgetPct) {
		fmt.Fprintf(os.Stderr, "f2perf: amortized profiler overhead %.2f%% exceeds the %.2f%% budget\n",
			res.AmortizedPct, budgetPct)
		return 1
	}
	return 0
}

// runCompare implements the gate mode. args may carry trailing flags
// (e.g. `f2perf -compare old.json new.json -threshold 10`): flag.Parse
// stops at the first positional, so the tail is re-parsed here.
func runCompare(args []string, threshold float64) int {
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: f2perf -compare old.json new.json [-threshold N]")
		return 2
	}
	oldPath, newPath := args[0], args[1]
	if rest := args[2:]; len(rest) > 0 {
		fs := flag.NewFlagSet("compare", flag.ContinueOnError)
		fs.Float64Var(&threshold, "threshold", threshold, "regression threshold in percent")
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		if fs.NArg() > 0 {
			fmt.Fprintf(os.Stderr, "f2perf: unexpected arguments %q after -compare files\n", fs.Args())
			return 2
		}
	}
	oldRep, err := perf.ReadReport(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "f2perf: %v\n", err)
		return 2
	}
	newRep, err := perf.ReadReport(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "f2perf: %v\n", err)
		return 2
	}
	cmp := perf.Compare(oldRep, newRep, threshold)
	fmt.Print(cmp.Render(oldRep, newRep))
	if !cmp.OK() {
		return 1
	}
	return 0
}
