package fd

import (
	"f2/internal/relation"
)

// FDEP implements the dependency-induction algorithm of Flach & Savnik
// (bottom-up variant): compute the *negative cover* — for every pair of
// rows, the agreement set A(r1,r2) witnesses that A→B is violated for all
// B outside it — then specialize the positive cover against every
// violation. It is a completely independent route to the minimal FDs from
// TANE's levelwise partition refinement, which makes it a strong
// cross-check oracle at mid scale (O(n²·m) pair scanning, so keep n in the
// thousands), and it is one of the seven algorithms surveyed in the
// paper's related work [24].
//
// Like Discover, FDs with an empty LHS (constant columns) are excluded;
// see the TANE note.
func FDEP(t *relation.Table) *Set {
	m := t.NumAttrs()
	n := t.NumRows()
	if m == 0 || n == 0 {
		return NewSet()
	}
	full := relation.FullAttrSet(m)

	// 1. Negative cover: the distinct maximal agreement sets. For each
	// violated pair (agreement set A, attribute B ∉ A) the dependency
	// X→B is invalid for every X ⊆ A. Deduplicate agreement sets and keep
	// only the maximal ones — subsets impose weaker constraints.
	agreeSets := make(map[relation.AttrSet]bool)
	cols := make([][]int32, m)
	coded := relation.Encode(t)
	for a := 0; a < m; a++ {
		cols[a] = coded.Column(a)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var agree relation.AttrSet
			for a := 0; a < m; a++ {
				if cols[a][i] == cols[a][j] {
					agree = agree.Add(a)
				}
			}
			agreeSets[agree] = true
		}
	}
	var allAgree []relation.AttrSet
	for a := range agreeSets {
		allAgree = append(allAgree, a)
	}

	// 2. Positive cover per RHS: maintain a set of minimal LHS candidates,
	// starting from the most general allowed ones (the singletons). Every
	// agreement set A with RHS ∉ A invalidates all candidates X ⊆ A, which
	// are replaced by their minimal specializations X ∪ {c}, c ∉ A∪{RHS}.
	out := NewSet()
	for rhs := 0; rhs < m; rhs++ {
		// Most general candidates: the singletons (empty LHSs — constant
		// columns — are excluded, as in Discover).
		var lhss []relation.AttrSet
		for a := 0; a < m; a++ {
			if a != rhs {
				lhss = append(lhss, relation.SingleAttr(a))
			}
		}
		// Violations for this RHS: agreement sets not containing it.
		// Maximality filtering is per RHS — a witness {A,B} must not be
		// absorbed by a larger agreement set {A,B,RHS} that is harmless
		// for this RHS.
		var violating []relation.AttrSet
		for _, a := range allAgree {
			if !a.Has(rhs) {
				violating = append(violating, a)
			}
		}
		for _, agree := range maximalSets(violating) {
			var next []relation.AttrSet
			for _, x := range lhss {
				if !x.SubsetOf(agree) {
					next = append(next, x) // unaffected
					continue
				}
				// Specialize: add one attribute outside agree ∪ {rhs}.
				for _, c := range full.Diff(agree).Remove(rhs).Attrs() {
					next = append(next, x.Add(c))
				}
			}
			lhss = minimalSets(next)
		}
		for _, x := range lhss {
			if !x.IsEmpty() {
				out.Add(FD{LHS: x, RHS: rhs})
			}
		}
	}
	return out
}

// maximalSets keeps the inclusion-maximal sets of the input.
func maximalSets(sets []relation.AttrSet) []relation.AttrSet {
	relation.SortAttrSets(sets)
	var out []relation.AttrSet
	for i := len(sets) - 1; i >= 0; i-- {
		dominated := false
		for _, big := range out {
			if sets[i].SubsetOf(big) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, sets[i])
		}
	}
	relation.SortAttrSets(out)
	return out
}

// minimalSets deduplicates and keeps the inclusion-minimal sets.
func minimalSets(sets []relation.AttrSet) []relation.AttrSet {
	relation.SortAttrSets(sets)
	var out []relation.AttrSet
	for _, s := range sets {
		dominated := false
		for _, small := range out {
			if small == s || small.SubsetOf(s) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, s)
		}
	}
	return out
}
