// Fixture for f2vet/spanend: every obs.Start span must be End()ed on
// every path out of the function.
package spanend

import (
	"context"
	"errors"

	"obs"
)

var errFail = errors.New("fail")

// defer covers every path.
func deferred(ctx context.Context) error {
	sctx, sp := obs.Start(ctx, "deferred")
	defer sp.End()
	_ = sctx
	return nil
}

// Explicit End on each exit path (the encrypt-pipeline idiom).
func perPath(ctx context.Context, fail bool) error {
	sctx, sp := obs.Start(ctx, "perPath")
	_ = sctx
	if fail {
		sp.End()
		return errFail
	}
	sp.End()
	return nil
}

// An error path that forgets the End.
func missingOnError(ctx context.Context, fail bool) error {
	sctx, sp := obs.Start(ctx, "missingOnError")
	_ = sctx
	if fail {
		return errFail // want "still open"
	}
	sp.End()
	return nil
}

// No End anywhere: flagged at the Start.
func missingFallThrough(ctx context.Context) {
	sctx, sp := obs.Start(ctx, "missingFallThrough") // want "not ended before the function returns"
	_ = sctx
	_ = sp
}

// Discarding the span makes it impossible to End.
func discarded(ctx context.Context) {
	_, _ = obs.Start(ctx, "discarded") // want "is discarded"
}

// Reusing the span variable for the next stage requires ending the
// previous stage first.
func reuseGood(ctx context.Context, fail bool) error {
	sctx, sp := obs.Start(ctx, "step1")
	_ = sctx
	if fail {
		sp.End()
		return errFail
	}
	sp.End()
	sctx, sp = obs.Start(ctx, "step2")
	_ = sctx
	defer sp.End()
	return nil
}

func reuseBad(ctx context.Context) {
	sctx, sp := obs.Start(ctx, "step1")
	_ = sctx
	sctx, sp = obs.Start(ctx, "step2") // want "overwritten by a new obs.Start"
	_ = sctx
	sp.End()
}

// A span opened inside a loop must close before the iteration ends.
func loopBad(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		sctx, sp := obs.Start(ctx, "iter") // want "started in a loop body"
		_ = sctx
		_ = sp
	}
}

func loopGood(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		sctx, sp := obs.Start(ctx, "iter")
		_ = sctx
		sp.End()
	}
}

// The worker-loop idiom: Start and End inside one select case.
func worker(ctx context.Context, jobs chan int) {
	for {
		select {
		case <-jobs:
			sctx, sp := obs.Start(ctx, "job")
			_ = sctx
			sp.End()
		case <-ctx.Done():
			return
		}
	}
}

// Ending through a deferred closure counts.
func deferredClosure(ctx context.Context) {
	sctx, sp := obs.Start(ctx, "closure")
	_ = sctx
	defer func() {
		sp.End()
	}()
}

// Handing the span to another component that ends it needs a reasoned
// suppression.
func handoff(ctx context.Context) *obs.Span {
	sctx, sp := obs.Start(ctx, "handoff")
	_ = sctx
	//lint:ignore f2vet/spanend span ownership transfers to the caller, which ends it
	return sp
}
