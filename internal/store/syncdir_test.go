package store

import (
	"fmt"
	"syscall"
	"testing"
)

// TestUnsupportedSyncClassification: only the "this filesystem cannot
// fsync directories" errno class is tolerated; a real I/O failure must
// surface, not be swallowed as unsupported.
func TestUnsupportedSyncClassification(t *testing.T) {
	for _, errno := range []syscall.Errno{syscall.EINVAL, syscall.ENOTSUP, syscall.ENOTTY, syscall.EOPNOTSUPP} {
		if !unsupportedSync(errno) {
			t.Errorf("%v not classified as unsupported", errno)
		}
		// The classifier must see through fs.PathError-style wrapping.
		if !unsupportedSync(fmt.Errorf("sync %s: %w", "dir", errno)) {
			t.Errorf("wrapped %v not classified as unsupported", errno)
		}
	}
	for _, err := range []error{syscall.EIO, syscall.ENOSPC, syscall.EBADF, fmt.Errorf("plain")} {
		if unsupportedSync(err) {
			t.Errorf("%v wrongly tolerated as unsupported sync", err)
		}
	}
}
