package bench

import (
	"context"
	"fmt"
	"time"

	"f2/internal/core"
	"f2/internal/crypt"
	"f2/internal/mas"
	"f2/internal/workload"
)

// RunAblations runs the design-choice ablations called out in DESIGN.md:
// split factor ϖ, MAS-discovery algorithm, PRF family, and the effect of
// disabling Step 3/Step 4.
func RunAblations(ctx context.Context, o Options) ([]*Table, error) {
	var out []*Table
	for _, f := range []func(context.Context, Options) (*Table, error){
		ablationSplitFactor,
		ablationSplitPoint,
		ablationMASAlgorithm,
		ablationPRF,
		ablationSteps,
	} {
		t, err := f(ctx, o)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// ablationSplitFactor sweeps ϖ: larger split factors spread each
// equivalence class over more ciphertext instances (better Kerckhoffs
// margin: success ≤ 1/y with y = ϖk'+k-k') at the cost of more scale
// copies.
func ablationSplitFactor(ctx context.Context, o Options) (*Table, error) {
	tbl, err := dataset(workload.NameSynthetic, o.scale(33000), o.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation-splitfactor",
		Title:  "Split factor ϖ sweep (synthetic, α=0.25)",
		Header: []string{"ϖ", "instances", "SCALE rows", "total overhead", "SSE(ms)"},
		Notes:  []string{"§3.2.2: ϖ is user-chosen; §4.2: larger ϖ increases the ciphertext count y per ECG"},
	}
	for _, w := range []int{2, 3, 4, 6, 8} {
		cfg := benchConfig(0.25)
		cfg.SplitFactor = w
		res, err := encrypt(ctx, tbl, cfg)
		if err != nil {
			return nil, err
		}
		r := res.Report
		t.AddRow(fmt.Sprint(w), fmt.Sprint(r.NumInstances), fmt.Sprint(r.ScaleRows),
			pct(r.Overhead()), ms(r.TimeSSE))
	}
	return t, nil
}

// ablationMASAlgorithm compares the DUCC-style border search against the
// levelwise Apriori sweep (§3.1 argues DUCC's cost tracks the border, not
// the attribute count).
func ablationMASAlgorithm(ctx context.Context, o Options) (*Table, error) {
	t := &Table{
		ID:     "ablation-mas",
		Title:  "MAS discovery: DUCC border search vs levelwise sweep",
		Header: []string{"dataset", "rows", "ducc(ms)", "ducc checks", "levelwise(ms)", "levelwise checks"},
	}
	for _, c := range []struct {
		name string
		n    int
	}{
		{workload.NameOrders, o.scale(10000)},
		{workload.NameCustomer, o.scale(4000)},
		{workload.NameSynthetic, o.scale(33000)},
	} {
		tbl, err := dataset(c.name, c.n, o.Seed)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		ducc := mas.Discover(tbl)
		duccTime := time.Since(start)
		start = time.Now()
		level := mas.DiscoverLevelwise(tbl)
		levelTime := time.Since(start)
		if len(ducc.Sets) != len(level.Sets) {
			return nil, fmt.Errorf("bench: MAS algorithms disagree on %s (%d vs %d sets)",
				c.name, len(ducc.Sets), len(level.Sets))
		}
		t.AddRow(c.name, fmt.Sprint(c.n), ms(duccTime), fmt.Sprint(ducc.Checked),
			ms(levelTime), fmt.Sprint(level.Checked))
	}
	return t, nil
}

// ablationPRF compares the AES-CTR and HMAC-SHA256 pseudorandom functions
// backing the probabilistic cipher.
func ablationPRF(ctx context.Context, o Options) (*Table, error) {
	tbl, err := dataset(workload.NameOrders, o.scale(10000), o.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation-prf",
		Title:  "PRF family: AES-CTR vs HMAC-SHA256 (Orders, α=0.2)",
		Header: []string{"prf", "SSE(ms)", "SYN(ms)", "total(ms)"},
	}
	for _, prf := range []crypt.PRF{crypt.PRFAESCTR, crypt.PRFHMAC} {
		cfg := benchConfig(0.2)
		cfg.PRF = prf
		res, err := encrypt(ctx, tbl, cfg)
		if err != nil {
			return nil, err
		}
		r := res.Report
		t.AddRow(prf.String(), ms(r.TimeSSE), ms(r.TimeSYN), ms(r.TotalTime()))
	}
	return t, nil
}

// ablationSteps disables conflict resolution and FP elimination in turn,
// demonstrating why each step exists (Figure 3(e) and Example 3.1).
func ablationSteps(ctx context.Context, o Options) (*Table, error) {
	tbl, err := dataset(workload.NameSynthetic, o.scale(33000), o.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation-steps",
		Title:  "Disabling pipeline steps (synthetic, α=0.25)",
		Header: []string{"variant", "rows out", "overhead", "total(ms)"},
		Notes:  []string{"skipping Step 4 leaves false-positive FDs; skipping Step 3 breaks FDs across overlapping MASs (checked by unit tests)"},
	}
	variants := []struct {
		name string
		mod  func(*core.Config)
	}{
		{"full pipeline", func(*core.Config) {}},
		{"skip FP elimination", func(c *core.Config) { c.SkipFPElimination = true }},
		{"skip conflict resolution", func(c *core.Config) { c.SkipConflictResolution = true }},
	}
	for _, v := range variants {
		cfg := benchConfig(0.25)
		v.mod(&cfg)
		res, err := encrypt(ctx, tbl, cfg)
		if err != nil {
			return nil, err
		}
		r := res.Report
		t.AddRow(v.name, fmt.Sprint(r.EncryptedRows), pct(r.Overhead()), ms(r.TotalTime()))
	}
	return t, nil
}

// ablationSplitPoint compares the optimal split-point search of §3.2.2
// against naively splitting every equivalence class (j = 1): the optimal
// point is "close to the ECs of the largest frequency (few split is
// needed)", which the copy counts confirm.
func ablationSplitPoint(ctx context.Context, o Options) (*Table, error) {
	t := &Table{
		ID:     "ablation-splitpoint",
		Title:  "Optimal vs naive split point (α=0.25, ϖ=2)",
		Header: []string{"dataset", "rows", "optimal SCALE rows", "naive SCALE rows", "saved"},
	}
	for _, c := range []struct {
		name string
		n    int
	}{
		{workload.NameSynthetic, o.scale(33000)},
		{workload.NameOrders, o.scale(10000)},
	} {
		tbl, err := dataset(c.name, c.n, o.Seed)
		if err != nil {
			return nil, err
		}
		opt, err := encrypt(ctx, tbl, benchConfig(0.25))
		if err != nil {
			return nil, err
		}
		cfg := benchConfig(0.25)
		cfg.NaiveSplitPoint = true
		naive, err := encrypt(ctx, tbl, cfg)
		if err != nil {
			return nil, err
		}
		saved := naive.Report.ScaleRows - opt.Report.ScaleRows
		t.AddRow(c.name, fmt.Sprint(c.n),
			fmt.Sprint(opt.Report.ScaleRows), fmt.Sprint(naive.Report.ScaleRows),
			fmt.Sprintf("%d (%.1f%%)", saved, 100*float64(saved)/float64(max(naive.Report.ScaleRows, 1))))
	}
	return t, nil
}
