package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"f2/internal/fd"
	"f2/internal/partition"
	"f2/internal/relation"
)

// appendStreamTable builds a base table with rich MAS structure: three
// attribute groups with small domains (duplicates everywhere) plus an
// always-unique ID column, so the MASs never cover the full schema.
func appendStreamTable(rng *rand.Rand, rows int) *relation.Table {
	tbl := relation.NewTable(relation.MustSchema("A", "B", "C", "D", "ID"))
	for i := 0; i < rows; i++ {
		tbl.AppendRow(streamRow(rng, i))
	}
	return tbl
}

func streamRow(rng *rand.Rand, id int) []string {
	return []string{
		fmt.Sprintf("a%d", rng.Intn(4)),
		fmt.Sprintf("b%d", rng.Intn(3)),
		fmt.Sprintf("c%d", rng.Intn(4)),
		fmt.Sprintf("d%d", rng.Intn(3)),
		fmt.Sprintf("id%d", id),
	}
}

// borderStableRow synthesizes an append that provably keeps the MAS
// border: it copies an existing row of a size-≥2 equivalence class over
// one MAS and takes globally fresh values elsewhere. Every agreement set
// it realizes is contained in an agreement set two existing rows already
// realize, hence inside an existing MAS.
func borderStableRow(t *relation.Table, mas relation.AttrSet, rng *rand.Rand, serial int) []string {
	row := make([]string, t.NumAttrs())
	for a := range row {
		row[a] = fmt.Sprintf("fresh-%d-%d", serial, a)
	}
	p := partition.Of(t, mas)
	classes := p.NonSingletonClasses()
	if len(classes) > 0 {
		src := classes[rng.Intn(len(classes))].Rows[0]
		for _, a := range mas.Attrs() {
			row[a] = t.Cell(src, a)
		}
	}
	return row
}

// checkFrequencyFlatness asserts the attacker-visible invariant on one
// encrypted table: within every attribute, every frequency class with
// f ≥ 2 holds at least k distinct ciphertexts.
func checkFrequencyFlatness(t *testing.T, enc *relation.Table, k int, label string) {
	t.Helper()
	for a := 0; a < enc.NumAttrs(); a++ {
		byCount := map[int]int{}
		for _, f := range enc.Freq(a) {
			if f > 1 {
				byCount[f]++
			}
		}
		for f, vals := range byCount {
			if vals < k {
				t.Errorf("%s: attr %d has %d ciphertexts at frequency %d (< k=%d)", label, a, vals, f, k)
			}
		}
	}
}

// TestIncrementalMatchesRebuildOnAppendStream is the equivalence property
// test of the incremental update engine: two updaters over the same
// initial table — one incremental, one forced-rebuild — consume the same
// randomized append stream, and after every flush both ciphertexts must
// witness exactly the plaintext's witnessed FDs, recover the plaintext
// exactly, and satisfy the frequency-hiding invariant. The stream mixes
// border-stable appends (which the incremental engine must serve without
// a rebuild) with border-moving ones (full-row duplicates, fresh
// projections) that exercise the fallback.
func TestIncrementalMatchesRebuildOnAppendStream(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	base := appendStreamTable(rng, 120)
	cfg := testConfig(0.5)

	inc, _, err := NewUpdater(context.Background(), cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	reb, _, err := NewUpdater(context.Background(), cfg, base.Clone())
	if err != nil {
		t.Fatal(err)
	}
	reb.Strategy = UpdateRebuild

	serial := 0
	for flush := 0; flush < 6; flush++ {
		var batch [][]string
		for i := 0; i < 8; i++ {
			serial++
			var row []string
			switch roll := rng.Intn(10); {
			case roll < 5 && len(inc.Result().MASs) > 0:
				m := inc.Result().MASs[rng.Intn(len(inc.Result().MASs))]
				row = borderStableRow(inc.Current(), m, rng, serial)
			case roll < 7:
				// Same distribution as the base: may join classes, promote
				// singletons, or merge MASs.
				row = streamRow(rng, 10000+serial)
			case roll < 9:
				// Exact duplicate of an existing row: makes the full
				// attribute set non-unique, guaranteeing a border change.
				row = inc.Current().Row(rng.Intn(inc.Current().NumRows()))
			default:
				row = borderStableRow(inc.Current(), 0, rng, serial) // all fresh
			}
			batch = append(batch, row)
		}
		if err := inc.Buffer(batch); err != nil {
			t.Fatal(err)
		}
		if err := reb.Buffer(batch); err != nil {
			t.Fatal(err)
		}
		incRes, err := inc.Flush(context.Background())
		if err != nil {
			t.Fatalf("flush %d (incremental): %v", flush, err)
		}
		rebRes, err := reb.Flush(context.Background())
		if err != nil {
			t.Fatalf("flush %d (rebuild): %v", flush, err)
		}

		if !reflect.DeepEqual(inc.Current().SortedRows(), reb.Current().SortedRows()) {
			t.Fatalf("flush %d: plaintext copies diverged", flush)
		}
		plainFDs := fd.DiscoverWitnessed(inc.Current())
		incFDs := fd.DiscoverWitnessed(incRes.Encrypted)
		rebFDs := fd.DiscoverWitnessed(rebRes.Encrypted)
		if !plainFDs.Equal(incFDs) {
			t.Fatalf("flush %d (%s): incremental ciphertext FDs %v ≠ plaintext %v",
				flush, inc.LastFlush, incFDs, plainFDs)
		}
		if !plainFDs.Equal(rebFDs) {
			t.Fatalf("flush %d: rebuild ciphertext FDs %v ≠ plaintext %v", flush, rebFDs, plainFDs)
		}
		if !reflect.DeepEqual(incRes.MASs, rebRes.MASs) {
			t.Fatalf("flush %d: MASs differ: %v vs %v", flush, incRes.MASs, rebRes.MASs)
		}

		dec, err := NewDecryptor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		back, err := dec.Recover(context.Background(), incRes)
		if err != nil {
			t.Fatalf("flush %d: recovering incremental result: %v", flush, err)
		}
		if !reflect.DeepEqual(back.SortedRows(), inc.Current().SortedRows()) {
			t.Fatalf("flush %d: incremental result does not recover the plaintext", flush)
		}

		checkFrequencyFlatness(t, incRes.Encrypted, cfg.K(), fmt.Sprintf("flush %d incremental", flush))
		checkFrequencyFlatness(t, rebRes.Encrypted, cfg.K(), fmt.Sprintf("flush %d rebuild", flush))

		// Provenance accounting must stay exact after patching.
		if len(incRes.Origins) != incRes.Encrypted.NumRows() {
			t.Fatalf("flush %d: %d origins for %d rows", flush, len(incRes.Origins), incRes.Encrypted.NumRows())
		}
		wantRows := inc.Rows() + incRes.Report.ConflictRows + incRes.Report.ScaleRows +
			incRes.Report.GroupRows + incRes.Report.FPRows
		if incRes.Encrypted.NumRows() != wantRows {
			t.Fatalf("flush %d: row accounting %d ≠ %d", flush, incRes.Encrypted.NumRows(), wantRows)
		}
	}

	if inc.IncrementalFlushes == 0 {
		t.Error("stream never took the incremental path")
	}
	if inc.Rebuilds < 2 {
		t.Error("stream never exercised the rebuild fallback")
	}
	t.Logf("flushes: %d incremental, %d rebuilds (incl. initial)", inc.IncrementalFlushes, inc.Rebuilds)
}

// TestIncrementalOnlyStreamNeverRebuilds pins the acceptance criterion:
// a stream of provably border-stable appends is served entirely by the
// incremental engine, with strictly less Step-1 and re-encryption work
// than the rebuild path does for the same rows.
func TestIncrementalOnlyStreamNeverRebuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := appendStreamTable(rng, 150)
	cfg := testConfig(0.5)

	inc, initial, err := NewUpdater(context.Background(), cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	reb, _, err := NewUpdater(context.Background(), cfg, base.Clone())
	if err != nil {
		t.Fatal(err)
	}
	reb.Strategy = UpdateRebuild
	if len(initial.MASs) == 0 {
		t.Fatal("base table has no MASs; stream cannot exercise grouped appends")
	}

	serial := 0
	for flush := 0; flush < 4; flush++ {
		var batch [][]string
		for i := 0; i < 6; i++ {
			serial++
			m := initial.MASs[rng.Intn(len(initial.MASs))]
			batch = append(batch, borderStableRow(inc.Current(), m, rng, serial))
		}
		if err := inc.Buffer(batch); err != nil {
			t.Fatal(err)
		}
		if err := reb.Buffer(batch); err != nil {
			t.Fatal(err)
		}
		incRes, err := inc.Flush(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		rebRes, err := reb.Flush(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if inc.LastFlush != FlushModeIncremental {
			t.Fatalf("flush %d fell back to %q on a border-stable batch", flush, inc.LastFlush)
		}
		if incRes.Report.UniquenessChecks != 0 || rebRes.Report.UniquenessChecks == 0 {
			t.Errorf("flush %d: incremental did %d full-table uniqueness checks, rebuild %d — incremental must do none",
				flush, incRes.Report.UniquenessChecks, rebRes.Report.UniquenessChecks)
		}
		if incRes.Report.BorderProbes == 0 {
			t.Errorf("flush %d: incremental recorded no border probes", flush)
		}
		if incRes.Report.ReencryptedRows >= rebRes.Report.ReencryptedRows {
			t.Errorf("flush %d: incremental re-encrypted %d rows, rebuild %d — no reuse",
				flush, incRes.Report.ReencryptedRows, rebRes.Report.ReencryptedRows)
		}
		want := fd.DiscoverWitnessed(inc.Current())
		if got := fd.DiscoverWitnessed(incRes.Encrypted); !want.Equal(got) {
			t.Fatalf("flush %d: FDs diverged: %v vs %v", flush, got, want)
		}
	}
	if inc.Rebuilds != 1 {
		t.Fatalf("border-stable stream triggered %d rebuilds", inc.Rebuilds-1)
	}
}

// TestIncrementalFlushDeterministic: like the full pipeline, the
// incremental engine must map one key and one append stream to exactly
// one ciphertext table — patch emission and Step-4 template selection
// iterate in sorted order, not map order.
func TestIncrementalFlushDeterministic(t *testing.T) {
	// A 5×5 grid: rows i share (A,B) iff i ≡ j (mod 5) and (C,D) iff
	// i/5 == j/5, never both — so the MASs are exactly {A,B} and {C,D}
	// and every flush below grows ECGs in two different plans.
	grid := func() *relation.Table {
		tbl := relation.NewTable(relation.MustSchema("A", "B", "C", "D", "ID"))
		for i := 0; i < 25; i++ {
			tbl.AppendRow([]string{
				fmt.Sprintf("a%d", i%5), fmt.Sprintf("b%d", i%5),
				fmt.Sprintf("c%d", i/5), fmt.Sprintf("d%d", i/5),
				fmt.Sprintf("id%d", i),
			})
		}
		return tbl
	}
	run := func() *relation.Table {
		rng := rand.New(rand.NewSource(13))
		base := grid()
		u, res0, err := NewUpdater(context.Background(), testConfig(0.5), base)
		if err != nil {
			t.Fatal(err)
		}
		if len(res0.MASs) < 2 {
			t.Fatalf("want ≥ 2 MASs to touch several ECGs per flush, got %v", res0.MASs)
		}
		serial := 0
		for flush := 0; flush < 2; flush++ {
			var batch [][]string
			for i := 0; i < 6; i++ {
				serial++
				m := res0.MASs[serial%len(res0.MASs)]
				batch = append(batch, borderStableRow(u.Current(), m, rng, serial))
			}
			if err := u.Buffer(batch); err != nil {
				t.Fatal(err)
			}
			if _, err := u.Flush(context.Background()); err != nil {
				t.Fatal(err)
			}
			if u.LastFlush != FlushModeIncremental {
				t.Fatalf("flush %d took %q", flush, u.LastFlush)
			}
		}
		return u.Result().Encrypted
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.SortedRows(), b.SortedRows()) {
		t.Fatal("two identical incremental runs produced different ciphertext tables")
	}
	for i := 0; i < a.NumRows(); i++ {
		if !reflect.DeepEqual(a.Row(i), b.Row(i)) {
			t.Fatalf("row %d differs between identical runs", i)
		}
	}
}

// TestIncrementalFlushCancelledLeavesUpdaterUnchanged: a cancelled
// incremental flush must be fully transactional — same pending buffer,
// same Result pointer, same retained plan state — and a later flush with
// a live context must succeed incrementally off that state.
func TestIncrementalFlushCancelledLeavesUpdaterUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := appendStreamTable(rng, 80)
	cfg := testConfig(0.5)
	u, res0, err := NewUpdater(context.Background(), cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(res0.MASs) == 0 {
		t.Fatal("base table has no MASs")
	}
	batch := [][]string{
		borderStableRow(base, res0.MASs[0], rng, 1),
		borderStableRow(base, res0.MASs[0], rng, 2),
	}
	if err := u.Buffer(batch); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := u.Flush(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled incremental flush: err = %v, want context.Canceled", err)
	}
	if u.Pending() != 2 || u.Rows() != 80 || u.Result() != res0 {
		t.Fatalf("cancelled flush mutated the updater: pending=%d rows=%d sameResult=%v",
			u.Pending(), u.Rows(), u.Result() == res0)
	}
	if u.IncrementalFlushes != 0 || u.LastFlush != FlushModeNone {
		t.Fatalf("cancelled flush recorded a path: incr=%d last=%q", u.IncrementalFlushes, u.LastFlush)
	}

	res, err := u.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if u.LastFlush != FlushModeIncremental || u.Pending() != 0 || u.Rows() != 82 {
		t.Fatalf("retry flush: last=%q pending=%d rows=%d", u.LastFlush, u.Pending(), u.Rows())
	}
	want := fd.DiscoverWitnessed(u.Current())
	if got := fd.DiscoverWitnessed(res.Encrypted); !want.Equal(got) {
		t.Fatalf("retry flush FDs diverged: %v vs %v", got, want)
	}
}

// TestIncrementalWitnessesNewViolations pins the Step-4 patch: an append
// that newly violates a dependency inside an unchanged MAS border must
// re-witness it so the ciphertext does not exhibit a false-positive FD.
func TestIncrementalWitnessesNewViolations(t *testing.T) {
	// B is constant per a-value at first: A→B holds. MAS is {A,B}.
	tbl := relation.MustFromRows(relation.MustSchema("A", "B"), [][]string{
		{"a1", "b1"}, {"a1", "b1"}, {"a1", "b1"},
		{"a2", "b2"}, {"a2", "b2"},
		{"a3", "b3"}, {"a3", "b3"},
	})
	cfg := testConfig(0.5)
	u, res0, err := NewUpdater(context.Background(), cfg, tbl)
	if err != nil {
		t.Fatal(err)
	}
	wantMAS := []relation.AttrSet{relation.NewAttrSet(0, 1)}
	if !reflect.DeepEqual(res0.MASs, wantMAS) {
		t.Fatalf("MASs = %v, want %v", res0.MASs, wantMAS)
	}
	ab := fd.FD{LHS: relation.NewAttrSet(0), RHS: 1}
	if !fd.Holds(tbl, ab) {
		t.Fatal("A→B should hold initially")
	}

	// A single {"a1","b2"} breaks A→B. Its agreement sets — {A} with the
	// a1 rows, {B} with the a2 rows — stay inside the MAS, and it lands as
	// a fresh singleton class, so the flush must be served incrementally
	// AND must insert artificial pairs re-witnessing the new violation.
	// (Appending it twice would coin a born duplicate class and correctly
	// fall back to a rebuild instead.)
	if err := u.Buffer([][]string{{"a1", "b2"}}); err != nil {
		t.Fatal(err)
	}
	res, err := u.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if u.LastFlush != FlushModeIncremental {
		t.Fatalf("flush took %q, want incremental", u.LastFlush)
	}
	if fd.Holds(u.Current(), ab) {
		t.Fatal("A→B should be violated after the append")
	}
	if fd.Holds(res.Encrypted, ab) {
		t.Fatal("false positive: A→B holds on the ciphertext after the incremental flush")
	}
	if res.Report.FPRows <= res0.Report.FPRows-1 {
		t.Fatalf("no artificial pairs added: %d → %d", res0.Report.FPRows, res.Report.FPRows)
	}
	want := fd.DiscoverWitnessed(u.Current())
	if got := fd.DiscoverWitnessed(res.Encrypted); !want.Equal(got) {
		t.Fatalf("witnessed FDs diverged: %v vs %v", got, want)
	}
}
