// Package border finds the positive border of a monotone (downward-closed)
// predicate over attribute sets: the inclusion-maximal subsets of a
// universe that satisfy the predicate. Two F² steps reduce to exactly this
// problem:
//
//   - Step 1, MAS discovery: "has a duplicate projection" is downward
//     closed; its maximal sets are the MASs (maximal non-unique column
//     combinations);
//   - Step 4, false-positive elimination: for a fixed RHS attribute Y,
//     "X→Y is violated on D" is downward closed in X; its maximal sets
//     are the maximal false-positive dependencies that need artificial
//     records.
//
// The algorithm is Dualize & Advance (Gunopulos et al., TODS 2003), the
// foundation DUCC builds its random walks on: greedy walks classify the
// easy region, then the holes are enumerated as complements of the minimal
// transversals of the discovered negative border, until a fixpoint proves
// completeness.
package border

import (
	"f2/internal/relation"
)

// Finder locates the positive border of pred within universe. pred must be
// downward closed: pred(X) and Y ⊆ X imply pred(Y).
type Finder struct {
	universe relation.AttrSet
	attrs    []int
	pred     func(relation.AttrSet) bool

	cache    map[relation.AttrSet]bool
	positive map[relation.AttrSet]bool // verified maximal satisfying sets
	negative map[relation.AttrSet]bool // verified minimal violating sets
	checked  int
}

// Find returns the maximal subsets of universe satisfying pred, sorted,
// along with the number of predicate evaluations performed.
func Find(universe relation.AttrSet, pred func(relation.AttrSet) bool) ([]relation.AttrSet, int) {
	f := &Finder{
		universe: universe,
		attrs:    universe.Attrs(),
		pred:     pred,
		cache:    make(map[relation.AttrSet]bool),
		positive: make(map[relation.AttrSet]bool),
		negative: make(map[relation.AttrSet]bool),
	}
	f.run()
	var out []relation.AttrSet
	for x := range f.positive {
		out = append(out, x)
	}
	relation.SortAttrSets(out)
	return out, f.checked
}

// eval classifies one node, consulting the known borders before calling
// the predicate: subsets of positive sets satisfy, supersets of negative
// sets violate.
func (f *Finder) eval(x relation.AttrSet) bool {
	if v, ok := f.cache[x]; ok {
		return v
	}
	for s := range f.positive {
		if x.SubsetOf(s) {
			f.cache[x] = true
			return true
		}
	}
	for s := range f.negative {
		if s.SubsetOf(x) {
			f.cache[x] = false
			return false
		}
	}
	f.checked++
	v := f.pred(x)
	f.cache[x] = v
	return v
}

func (f *Finder) run() {
	if f.universe.IsEmpty() {
		return
	}
	// Fast path: when the whole universe satisfies the predicate, it is
	// the unique maximal set. (Common in the false-positive search, where
	// most dependencies are violated outright.)
	if f.eval(f.universe) {
		f.positive[f.universe] = true
		return
	}
	// Phase 1: greedy walks from the satisfying singletons.
	for _, a := range f.attrs {
		x := relation.SingleAttr(a)
		if f.eval(x) {
			f.walkUp(x)
		} else {
			f.negative[x] = true
		}
	}
	// Phase 2: Dualize & Advance until no hole remains.
	for f.advance() {
	}
}

// supersets returns the immediate supersets of x within the universe.
func (f *Finder) supersets(x relation.AttrSet) []relation.AttrSet {
	out := make([]relation.AttrSet, 0, len(f.attrs))
	for _, a := range f.attrs {
		if !x.Has(a) {
			out = append(out, x.Add(a))
		}
	}
	return out
}

// walkUp climbs from a satisfying node to a maximal one; violating
// supersets met on the way are walked down to minimal violating sets.
func (f *Finder) walkUp(x relation.AttrSet) {
	for {
		climbed := false
		for _, sup := range f.supersets(x) {
			if f.eval(sup) {
				x = sup
				climbed = true
				break
			}
			f.walkDown(sup)
		}
		if !climbed {
			f.positive[x] = true
			return
		}
	}
}

// walkDown descends from a violating node to a minimal violating one.
func (f *Finder) walkDown(x relation.AttrSet) {
	for {
		descended := false
		for _, a := range x.Attrs() {
			sub := x.Remove(a)
			if sub.IsEmpty() {
				continue
			}
			if !f.eval(sub) {
				x = sub
				descended = true
				break
			}
		}
		if !descended {
			f.negative[x] = true
			return
		}
	}
}

// advance runs one Dualize-&-Advance round: enumerate the maximal sets
// containing no minimal violating set. A satisfying candidate is provably
// maximal (any strict superset contains a minimal violating set); a
// violating candidate sharpens the negative border. Returns true while
// progress is possible.
func (f *Finder) advance() bool {
	progress := false
	for _, cand := range f.maximalAvoiding() {
		if f.positive[cand] {
			continue
		}
		if f.eval(cand) {
			f.positive[cand] = true
			progress = true
		} else {
			f.walkDown(cand)
			return true // negative border sharpened; recompute candidates
		}
	}
	return progress
}

// maximalAvoiding enumerates the maximal subsets of the universe
// containing no minimal violating set, as complements (within the
// universe) of the minimal transversals of the negative border, via
// Berge's incremental algorithm.
func (f *Finder) maximalAvoiding() []relation.AttrSet {
	trans := []relation.AttrSet{0}
	for e := range f.negative {
		var next []relation.AttrSet
		for _, t := range trans {
			if t.Overlaps(e) {
				next = append(next, t)
				continue
			}
			for _, v := range e.Attrs() {
				next = append(next, t.Add(v))
			}
		}
		trans = minimizeSets(next)
	}
	out := make([]relation.AttrSet, 0, len(trans))
	for _, t := range trans {
		c := f.universe.Diff(t)
		if !c.IsEmpty() {
			out = append(out, c)
		}
	}
	relation.SortAttrSets(out)
	return out
}

// minimizeSets removes duplicates and supersets, keeping only the
// inclusion-minimal sets.
func minimizeSets(sets []relation.AttrSet) []relation.AttrSet {
	relation.SortAttrSets(sets) // ascending size: minimal sets come first
	var out []relation.AttrSet
	for _, s := range sets {
		keep := true
		for _, t := range out {
			if t == s || t.SubsetOf(s) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, s)
		}
	}
	return out
}
