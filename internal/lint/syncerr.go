package lint

import (
	"go/ast"
	"go/types"
)

// Syncerr enforces the durability contract of internal/store: an error
// from fsync (or from closing a file that was written) can carry the
// final write failure, and swallowing it turns "fsynced before ack" into
// a durability hole the crash matrix cannot see. The analyzer flags
// discarded error results — bare expression statements and defers — from
// (*os.File).Sync, from Close on files opened for writing (or of unknown
// provenance; only files provably opened read-only are exempt), and from
// (*bufio.Writer).Flush. An explicit `_ = f.Close()` is visible intent
// and is allowed; pair it with a comment saying why the error cannot
// matter.
var Syncerr = &Analyzer{
	Name: "syncerr",
	Doc: "flag discarded errors from Sync/Close/Flush on write paths in internal/store\n" +
		"A swallowed fsync or close error breaks the fsync-before-ack durability proof.",
	Match: func(pkgPath string) bool {
		return pathMatches(pkgPath, "internal/store") || pathMatches(pkgPath, "store")
	},
	Run: runSyncerr,
}

// fileClass is what we know about how an *os.File variable was opened.
type fileClass int

const (
	fileUnknown fileClass = iota // param, field, map value, helper result
	fileRead                     // os.Open
	fileWrite                    // os.Create / os.CreateTemp / os.OpenFile with write flags
)

func runSyncerr(pass *Pass) error {
	eachFunc(pass.Files, func(_ *ast.FuncType, body *ast.BlockStmt) {
		classes := classifyFiles(pass, body)
		inspectShallow(body, func(n ast.Node) {
			switch s := n.(type) {
			case *ast.ExprStmt:
				checkDiscardedCall(pass, classes, s.X, false)
			case *ast.DeferStmt:
				checkDiscardedCall(pass, classes, s.Call, true)
			}
		})
	})
	return nil
}

// classifyFiles records how each locally opened *os.File variable was
// opened, by scanning the function body (closures excluded — they are
// classified as their own functions, where captured files come out
// fileUnknown, i.e. treated as write handles).
func classifyFiles(pass *Pass, body *ast.BlockStmt) map[types.Object]fileClass {
	classes := make(map[types.Object]fileClass)
	inspectShallow(body, func(n ast.Node) {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		f := calleeFunc(pass.Info, call)
		if f == nil || f.Pkg() == nil || f.Pkg().Path() != "os" {
			return
		}
		var class fileClass
		switch f.Name() {
		case "Open":
			class = fileRead
		case "Create", "CreateTemp":
			class = fileWrite
		case "OpenFile":
			if len(call.Args) >= 2 && mentionsWriteFlag(call.Args[1]) {
				class = fileWrite
			} else {
				class = fileRead
			}
		default:
			return
		}
		if obj := objOf(pass.Info, assign.Lhs[0]); obj != nil {
			classes[obj] = class
		}
	})
	return classes
}

// mentionsWriteFlag reports whether a flag expression names any of the
// os write flags (O_WRONLY, O_RDWR, O_APPEND) anywhere in its tree.
func mentionsWriteFlag(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "O_WRONLY", "O_RDWR", "O_APPEND":
				found = true
			}
		}
		return !found
	})
	return found
}

// checkDiscardedCall flags x when it is a Sync/Close/Flush call whose
// error result the statement discards.
func checkDiscardedCall(pass *Pass, classes map[types.Object]fileClass, x ast.Expr, deferred bool) {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return
	}
	f := calleeFunc(pass.Info, call)
	if f == nil {
		return
	}
	how := "discarded"
	if deferred {
		how = "discarded by defer"
	}
	switch {
	case isMethodOn(f, "os", "File", "Sync"):
		pass.Reportf(call.Pos(), "error from (*os.File).Sync %s: a lost fsync error voids the fsync-before-ack durability contract", how)
	case isMethodOn(f, "os", "File", "Close"):
		if receiverClass(pass, classes, call) == fileRead {
			return // closing a read-only file cannot lose written data
		}
		pass.Reportf(call.Pos(), "error from Close %s on a file opened for writing: close can surface the final write failure", how)
	case isMethodOn(f, "bufio", "Writer", "Flush"):
		pass.Reportf(call.Pos(), "error from (*bufio.Writer).Flush %s: unflushed bytes vanish silently", how)
	}
}

// receiverClass resolves the method call's receiver variable to its
// open-mode class; non-identifier receivers (fields, map lookups) stay
// fileUnknown.
func receiverClass(pass *Pass, classes map[types.Object]fileClass, call *ast.CallExpr) fileClass {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return fileUnknown
	}
	obj := objOf(pass.Info, sel.X)
	if obj == nil {
		return fileUnknown
	}
	return classes[obj]
}
